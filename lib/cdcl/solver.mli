(** The CDCL SAT solver ("camlsat").

    A conflict-driven clause-learning solver in the Kissat/MiniSat
    lineage: two-watched-literal propagation, first-UIP learning with
    recursive minimisation, EVSIDS branching, phase saving, Luby or
    LBD-EMA restarts, and a tiered learned-clause database whose reduce
    step ranks clauses with a pluggable {!Policy.t} — the integration
    point for the paper's propagation-frequency deletion metric.

    The clause database is a flat integer arena ({!Arena}): clauses are
    crefs into one growable buffer, watcher lists are unboxed
    [(tag, cref)] int pairs carrying a blocking literal (binary clauses
    inline the other literal in the tag and never touch clause memory
    during BCP), and deletion reclaims storage with a copying
    compaction instead of tombstone flags. See DESIGN.md "Arena clause
    database".

    Per-variable propagation-trigger counters are maintained since the
    last reduce (Section 3 of the paper) and drive the frequency policy;
    they are also exposed for Figure 3's distribution plot. *)

type t

type result =
  | Sat of bool array
      (** Model indexed by variable (index 0 unused). Guaranteed to
          satisfy the input formula. *)
  | Unsat
  | Unknown  (** A conflict or propagation budget was exhausted. *)

val create : ?config:Config.t -> Cnf.Formula.t -> t
(** Loads the formula (deduplicating literals, dropping tautologies,
    propagating units at level 0). *)

(** {1 Incremental API (IPASIR-style)}

    The solver is a state machine:

    {v
      Ready --solve--> Solving --> Sat | Unsat | Unknown --> Ready
    v}

    [create] leaves the solver [`Ready] (or [`Unsat] when the input is
    trivially unsatisfiable). A completed solve parks it in a verdict
    state; any mutation ({!add_clause}, {!new_var}) or another solve
    call moves it back through [`Ready]. Calls that are illegal while
    [`Solving] (i.e. re-entrant calls from a trace callback or signal
    handler) raise {!Runtime.Error.Runtime_error} with [Invalid_state]. [Unsat]
    is sticky: no sequence of [add_clause]/[new_var] calls can undo it. *)

type state = [ `Ready | `Solving | `Sat | `Unsat | `Unknown ]

val state : t -> state
(** Current position in the state machine. The verdict states mirror
    the cached {!result} that an immediate {!solve} would return. *)

val new_var : t -> int
(** Introduce one fresh variable and return its index ([num_vars] after
    the call). Grows every per-variable structure (assignment, watches,
    activity heap, VMTF queue, propagation counters). Amortised O(1).

    @raise Runtime.Error.Runtime_error when called while solving. *)

val add_clause : t -> Cnf.Lit.t list -> unit
(** Add a clause between solves (IPASIR [add]). The clause is
    simplified (duplicate literals dropped, tautologies ignored) and
    attached on the fly at decision level 0: root-falsified literals
    are moved out of the watched slots, clauses unit under the root
    assignment propagate immediately, and an empty or root-falsified
    clause makes the solver [`Unsat]. Any cached [Sat]/[Unknown]
    answer is invalidated.

    @raise Runtime.Error.Runtime_error when called while solving, or when a
    literal mentions a variable beyond {!num_vars} (introduce it with
    {!new_var} first). *)

val solve : t -> result
(** Runs search to completion or budget exhaustion. Calling [solve]
    again after [Unknown] continues with a fresh budget window; after
    [Sat]/[Unsat] it returns the same answer. A plain [solve] is
    assumption-free: any assumptions and failed-assumption core from an
    earlier {!solve_with_assumptions} are cleared first, so
    {!unsat_core} returns [None] afterwards. *)

val solve_with_assumptions : t -> Cnf.Lit.t list -> result
(** Incremental solving under assumption literals (MiniSat-style): each
    assumption occupies its own decision level below all search
    decisions. [Unsat] means the formula is unsatisfiable together with
    the assumptions; {!unsat_core} then returns a subset of the
    assumptions sufficient for the conflict (empty when the formula is
    unsatisfiable on its own). The solver can be reused afterwards with
    different assumptions. *)

val unsat_core : t -> Cnf.Lit.t list option
(** Failed-assumption core from the most recent
    {!solve_with_assumptions} that returned [Unsat]; [None] otherwise. *)

val config : t -> Config.t
val stats : t -> Solver_stats.t
(** Live counters (mutated by the solver); copy before storing. *)

val num_vars : t -> int

val propagation_counts : t -> int array
(** Snapshot of the per-variable propagation-trigger counters
    accumulated since the last clause-database reduction (index 0
    unused). *)

val value : t -> int -> bool option
(** Current assignment of a variable (meaningful after [Sat]). *)

val learned_clause_count : t -> int
(** Live (non-deleted) learned clauses. *)

val reduce_now : t -> unit
(** Force one clause-database reduction pass immediately (normally
    driven by the conflict schedule). Exposed for benchmarks and
    allocation tests. *)

val arena_gc_count : t -> int
(** Number of arena compactions performed so far. *)

val arena_live_words : t -> int
(** Words of live clause storage in the arena. *)

val inprocess_now : t -> unit
(** Run one inprocessing pass (vivification and/or backward
    subsumption per the config sub-switches) immediately at decision
    level 0, regardless of the restart schedule. A pass that derives
    unsatisfiability records the answer, which subsequent {!solve}
    calls return. Exposed for tests and benchmarks; no-op after a
    final answer. *)

val tier_counts : t -> int * int * int
(** Live learned clauses per tier as [(core, mid, local)]. All
    clauses report as local when inprocessing is off (tier bits stay
    at their allocation default). *)

val check_model : Cnf.Formula.t -> bool array -> bool
(** [check_model f model] verifies a {!Sat} witness independently. *)

(** {1 Proof tracing}

    Clause-learning and deletion events, in order — the raw material of
    a DRUP/DRAT unsatisfiability proof (see {!Drup}). *)

type trace_event =
  | Learned of Cnf.Lit.t array
  | Deleted of Cnf.Lit.t array

val set_trace : t -> (trace_event -> unit) -> unit
(** Install a trace callback (replacing any previous one). Must be set
    before {!solve} to capture a complete proof. *)

val clear_trace : t -> unit

(** {1 Portfolio clause sharing}

    Lockstep learned-clause exchange for portfolio solving (DESIGN.md
    §12). At every [interval]-th restart boundary the solver gathers
    its fresh exports — new root units plus learned clauses passing
    the glue / propagation-frequency filter, at most [per_epoch] per
    exchange — and hands them to the hook together with the current
    epoch number. The hook returns the peers' clauses for the same
    epoch (in sorted sender order); each one is validated by a
    vivification-style RUP probe at decision level 0 and either
    attached (and DRUP-logged, keeping the proof checkable) or
    rejected. Counters land in {!Solver_stats.t} ([shared_exported],
    [shared_imported], [shared_rejected]). *)

val set_share :
  ?interval:int ->
  ?glue_limit:int ->
  ?max_size:int ->
  ?per_epoch:int ->
  t ->
  (epoch:int -> Share.clause list -> Share.clause list) ->
  unit
(** Install the exchange hook (replacing any previous one). Defaults:
    exchange every restart, export clauses with glue ≤ 4 and at most
    32 literals (or whose frequency covers half their literals), cap
    64 clauses per epoch.

    @raise Runtime.Error.Runtime_error when called while solving. *)

val clear_share : t -> unit
val share_epochs : t -> int
(** Number of completed sharing exchanges. *)

val solve_formula :
  ?config:Config.t -> Cnf.Formula.t -> result * Solver_stats.t
(** One-shot convenience: create, solve, return result and a stats
    snapshot. *)


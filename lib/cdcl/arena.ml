(* Flat clause arena, Kissat-style.

   Every clause lives in one growable [int array]; a clause reference
   (cref) is the offset of its header. Layout, in words:

     c + 0   flags|glue|size   bit 0 learned, bit 1 used, bit 2 deleted,
                               bit 3 moved; bits 4..5 tier (0 local,
                               1 mid, 2 core); bits 6..7 usage counter
                               (saturating, drives tier promotion);
                               bits 8..27 glue (saturated); bits 28.. size
     c + 1   activity bits     order-preserving int encoding of the
                               float activity — or, once the moved bit
                               is set during GC, the forwarding cref
                               into the to-space
     c + 2   cid               stable clause id (tie-breaker in reduce)
     c + 3.. literals          [size] literals, one word each

   Garbage collection is a MiniSat-style copying pass: the solver
   relocates every root (clause vectors, then watchers and reasons)
   with [reloc], which copies a clause on first touch and installs a
   forwarding pointer in the from-space header, then [adopt]s the
   to-space. Deleted clauses are never relocated — the solver drops
   dead references before calling [reloc]. *)

type t = {
  mutable data : int array;
  mutable len : int;
  mutable garbage : int;  (* words occupied by deleted clauses *)
}

let header_words = 3
let glue_bits = 20
let glue_max = (1 lsl glue_bits) - 1
let glue_shift = 8
let size_shift = glue_shift + glue_bits
let lit_offset = header_words

let f_learned = 1
let f_used = 2
let f_deleted = 4
let f_moved = 8

(* Tiers of the learned-clause database ("Rethinking Clause Management
   for CDCL SAT Solvers"): core clauses are never deleted, mid clauses
   are reduced by ranking key, local clauses aggressively. Stored in
   header bits 4..5; the 2-bit usage counter (bits 6..7) counts
   conflicts the clause participated in since the last promotion
   decision. Both travel with the header word through relocation. *)
let tier_local = 0
let tier_mid = 1
let tier_core = 2
let tier_shift = 4
let tier_mask = 3
let usage_shift = 6
let usage_mask = 3
let usage_max = usage_mask

let create ?(capacity = 1024) () =
  { data = Array.make (max capacity header_words) 0; len = 0; garbage = 0 }

let raw a = a.data
let[@inline] size a c = Array.unsafe_get a.data c lsr size_shift
let[@inline] glue a c = (Array.unsafe_get a.data c lsr glue_shift) land glue_max
let[@inline] learned a c = Array.unsafe_get a.data c land f_learned <> 0
let[@inline] used a c = Array.unsafe_get a.data c land f_used <> 0
let[@inline] deleted a c = Array.unsafe_get a.data c land f_deleted <> 0
let[@inline] moved a c = Array.unsafe_get a.data c land f_moved <> 0
let[@inline] cid a c = Array.unsafe_get a.data (c + 2)

let[@inline] lit a c k : Cnf.Lit.t =
  Cnf.Lit.of_index (Array.unsafe_get a.data (c + header_words + k))

let[@inline] set_lit a c k (l : Cnf.Lit.t) =
  Array.unsafe_set a.data (c + header_words + k) (Cnf.Lit.to_index l)

let[@inline] swap_lits a c i j =
  let bi = c + header_words + i and bj = c + header_words + j in
  let tmp = Array.unsafe_get a.data bi in
  Array.unsafe_set a.data bi (Array.unsafe_get a.data bj);
  Array.unsafe_set a.data bj tmp

let set_glue a c g =
  let g = if g < 0 then 0 else if g > glue_max then glue_max else g in
  let w = a.data.(c) in
  a.data.(c) <- w land lnot (glue_max lsl glue_shift) lor (g lsl glue_shift)

let set_used a c = a.data.(c) <- a.data.(c) lor f_used
let clear_used a c = a.data.(c) <- a.data.(c) land lnot f_used

(* Promote a learned clause to irredundant (it subsumed an original, so
   it must now survive every reduce to keep the model sound). *)
let clear_learned a c = a.data.(c) <- a.data.(c) land lnot f_learned

let[@inline] tier a c = (Array.unsafe_get a.data c lsr tier_shift) land tier_mask

let set_tier a c t =
  if t < tier_local || t > tier_core then invalid_arg "Arena.set_tier";
  let w = a.data.(c) in
  a.data.(c) <- w land lnot (tier_mask lsl tier_shift) lor (t lsl tier_shift)

let[@inline] usage a c = (Array.unsafe_get a.data c lsr usage_shift) land usage_mask

let set_usage a c u =
  let u = if u < 0 then 0 else if u > usage_max then usage_max else u in
  let w = a.data.(c) in
  a.data.(c) <- w land lnot (usage_mask lsl usage_shift) lor (u lsl usage_shift)

let bump_usage a c =
  let u = usage a c in
  if u < usage_max then set_usage a c (u + 1)

let words a c = header_words + size a c

let mark_deleted a c =
  if a.data.(c) land f_deleted = 0 then begin
    a.data.(c) <- a.data.(c) lor f_deleted;
    a.garbage <- a.garbage + words a c
  end

(* Clause activities are non-negative floats; shifting the IEEE bit
   pattern right by one drops the sign bit (always 0) and one mantissa
   bit, leaving a 63-bit integer whose order matches the float order.
   Reduce can therefore compare activities without boxing a float. *)
let[@inline] encode_activity f =
  Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float f) 1)

let[@inline] decode_activity bits =
  Int64.float_of_bits (Int64.shift_left (Int64.of_int bits) 1)

let[@inline] activity_bits a c = Array.unsafe_get a.data (c + 1)
let[@inline] activity a c = decode_activity (activity_bits a c)
let[@inline] set_activity a c f = a.data.(c + 1) <- encode_activity f

let live_words a = a.len - a.garbage
let garbage a = a.garbage
let total_words a = a.len

let ensure a extra =
  let cap = Array.length a.data in
  if a.len + extra > cap then begin
    let cap' = ref (2 * cap) in
    while a.len + extra > !cap' do cap' := 2 * !cap' done;
    let data = Array.make !cap' 0 in
    Array.blit a.data 0 data 0 a.len;
    a.data <- data
  end

let alloc a ~learned ~glue ~cid ~size =
  if size > (max_int lsr size_shift) then invalid_arg "Arena.alloc: size";
  ensure a (header_words + size);
  let c = a.len in
  let g = if glue < 0 then 0 else if glue > glue_max then glue_max else glue in
  a.data.(c) <- (if learned then f_learned else 0) lor (g lsl glue_shift)
                lor (size lsl size_shift);
  a.data.(c + 1) <- 0 (* activity 0.0 *);
  a.data.(c + 2) <- cid;
  a.len <- a.len + header_words + size;
  c

let alloc_lits a ~learned ~glue ~cid lits =
  let size = Array.length lits in
  let c = alloc a ~learned ~glue ~cid ~size in
  for k = 0 to size - 1 do
    a.data.(c + header_words + k) <- Cnf.Lit.to_index lits.(k)
  done;
  c

let lits_array a c = Array.init (size a c) (fun k -> lit a c k)

(* In-place vivification shrink: keep the first [size'] literals, turn
   the tail into garbage. The freed words stay inside the clause's
   original footprint until the next GC copies only the live prefix. *)
let shrink_size a c size' =
  let old = size a c in
  if size' <= 0 || size' > old then invalid_arg "Arena.shrink_size";
  if size' < old then begin
    let w = a.data.(c) in
    a.data.(c) <- w land ((1 lsl size_shift) - 1) lor (size' lsl size_shift);
    a.garbage <- a.garbage + (old - size')
  end

(* --- copying GC --- *)

let gc_target a = create ~capacity:(max (live_words a) header_words) ()

let reloc ~from_ ~into c =
  let w = from_.data.(c) in
  if w land f_moved <> 0 then from_.data.(c + 1)
  else begin
    if w land f_deleted <> 0 then invalid_arg "Arena.reloc: deleted clause";
    let n = words from_ c in
    ensure into n;
    Array.blit from_.data c into.data into.len n;
    let c' = into.len in
    into.len <- into.len + n;
    from_.data.(c) <- w lor f_moved;
    from_.data.(c + 1) <- c';
    c'
  end

let adopt a from_ =
  a.data <- from_.data;
  a.len <- from_.len;
  a.garbage <- 0

(** Serialized clause batches for portfolio learned-clause exchange.

    A batch carries one sharing epoch's exports from one worker:
    literals (DIMACS ints on the wire), the clause's glue at export
    time, and its propagation-frequency score (Section 3) so the
    importer can seed its deletion policy. The encoding is a flat
    ASCII integer stream guarded by a CRC32 of the body, and each blob
    is self-delimiting so several batches concatenate on one pipe
    frame and decode back in order.

    The codec is pure string-to-string: transport framing (length
    prefixes, pipes, retries) belongs to {!Runtime.Frame}, and this
    module owns only payload integrity. Corruption is reported as a
    typed {!error}, never an exception — a torn or bit-flipped blob
    must be droppable by the importer without touching its arena. *)

type clause = {
  lits : Cnf.Lit.t array;  (** Non-empty; variables are sender-local. *)
  glue : int;  (** Glue (LBD) at export time; [0] for root units. *)
  frequency : int;  (** Propagation-frequency score at export time. *)
}

type batch = {
  sender : int;  (** Worker index in the portfolio. *)
  epoch : int;  (** Sharing epoch the exports belong to. *)
  clauses : clause list;  (** In export order. *)
}

type error =
  | Truncated  (** The blob ends before its delimiter. *)
  | Bad_magic  (** The body does not start with the format tag. *)
  | Bad_crc of { expected : string; actual : string }
      (** Body bytes do not match the carried checksum. *)
  | Malformed of string  (** Syntactically broken or out-of-bounds field. *)

val error_to_string : error -> string

val encode : batch -> string
(** Self-delimiting blob; safe to concatenate with other blobs. *)

val decode : string -> (batch, error) result
(** Decode a single blob occupying the whole string. *)

val decode_one : string -> pos:int -> (batch * int, error) result
(** Decode the blob starting at [pos]; returns the position just past
    its delimiter. *)

val decode_all : string -> (batch list, error) result
(** Decode a concatenation of blobs (possibly none). *)

(** Solver configuration. *)

type restart_mode =
  | No_restarts
  | Luby of int
      (** Luby sequence scaled by the given conflict unit (Kissat-style
          stable mode). *)
  | Glucose of { fast_alpha : float; slow_alpha : float; margin : float }
      (** Restart when [fast_ema(lbd) > margin * slow_ema(lbd)]. *)

type branching =
  | Evsids  (** Exponential VSIDS with an activity heap (default). *)
  | Vmtf  (** Variable-move-to-front queue (Kissat's focused mode). *)

type t = {
  policy : Policy.t;  (** Clause-deletion policy used at each reduce. *)
  branching : branching;
  restart_mode : restart_mode;
  var_decay : float;  (** EVSIDS decay, e.g. 0.95. *)
  clause_decay : float;  (** Clause-activity decay, e.g. 0.999. *)
  reduce_first : int;  (** Conflicts before the first reduce. *)
  reduce_inc : int;  (** Additional conflicts between successive reduces. *)
  reduce_fraction : float;  (** Fraction of reducible clauses deleted. *)
  tier1_glue : int;  (** Clauses with glue <= tier1 are never deleted. *)
  phase_saving : bool;
  minimize : bool;  (** Recursive learned-clause minimisation. *)
  max_conflicts : int option;  (** Budget; [None] = unlimited. *)
  max_propagations : int option;  (** Budget; [None] = unlimited. *)
  max_wall_seconds : float option;
      (** Wall-clock deadline per [solve] call, checked alongside the
          other budgets; [None] = unlimited. The solver answers
          [Unknown] when it expires. *)
  inprocess : bool;
      (** Master switch for the inprocessing tier (tiered clause DB,
          vivification, backward subsumption). Off by default so the
          bit-for-bit differential path against {!Verify.Refsolver}
          stays intact. *)
  inprocess_interval : int;
      (** Restarts between inprocessing passes (>= 1). *)
  tier2_glue : int;
      (** Learned clauses with [tier1_glue < glue <= tier2_glue] enter
          the mid tier; higher glue starts local. *)
  promote_uses : int;
      (** Conflict participations (saturating 2-bit counter) required to
          promote a clause one tier at the next reduce. *)
  vivify_budget : int;
      (** Propagation budget per vivification pass. *)
  subsume_budget : int;
      (** Clause-pair inspection budget per subsumption pass. *)
  inprocess_vivify : bool;  (** Sub-switch: run vivification. *)
  inprocess_subsume : bool;
      (** Sub-switch: run backward subsumption/strengthening. *)
}

val default : t
(** Kissat-flavoured defaults: [Default] policy, Luby-100 restarts,
    reduce at 100 conflicts growing by 50 (a schedule scaled to the
    laptop-size instances this reproduction runs on), delete 50%,
    tier1 glue 2. *)

val with_policy : Policy.t -> t -> t

val with_inprocess : ?interval:int -> bool -> t -> t
(** Toggle inprocessing; [interval] (clamped to >= 1) overrides
    {!field-inprocess_interval} when given. *)

val with_budget :
  ?max_conflicts:int -> ?max_propagations:int -> ?max_wall_seconds:float -> t -> t

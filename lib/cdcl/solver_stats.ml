type t = {
  mutable decisions : int;
  mutable conflicts : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable reduces : int;
  mutable learned_total : int;
  mutable deleted_total : int;
  mutable minimized_literals : int;
  mutable max_decision_level : int;
  (* Inprocessing (all zero when Config.inprocess is off). *)
  mutable inprocess_passes : int;
  mutable vivified : int;  (* clauses shrunk by vivification *)
  mutable vivify_deleted : int;  (* clauses deleted by vivification *)
  mutable subsumed : int;  (* clauses removed by backward subsumption *)
  mutable strengthened : int;  (* literals removed by self-subsumption *)
  (* Portfolio clause sharing (all zero without sharing). *)
  mutable shared_exported : int;
  mutable shared_imported : int;
  mutable shared_rejected : int;
}

let create () =
  {
    decisions = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    reduces = 0;
    learned_total = 0;
    deleted_total = 0;
    minimized_literals = 0;
    max_decision_level = 0;
    inprocess_passes = 0;
    vivified = 0;
    vivify_deleted = 0;
    subsumed = 0;
    strengthened = 0;
    shared_exported = 0;
    shared_imported = 0;
    shared_rejected = 0;
  }

let copy t = { t with decisions = t.decisions }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>decisions    %d@,conflicts    %d@,propagations %d@,restarts     %d@,\
     reduces      %d@,learned      %d@,deleted      %d@,minimized    %d@,\
     max-level    %d@]"
    t.decisions t.conflicts t.propagations t.restarts t.reduces t.learned_total
    t.deleted_total t.minimized_literals t.max_decision_level;
  if t.inprocess_passes > 0 then
    Format.fprintf ppf
      "@,@[<v>inprocess    %d@,vivified     %d@,viv-deleted  %d@,\
       subsumed     %d@,strengthened %d@]"
      t.inprocess_passes t.vivified t.vivify_deleted t.subsumed t.strengthened;
  if t.shared_exported > 0 || t.shared_imported > 0 || t.shared_rejected > 0 then
    Format.fprintf ppf
      "@,@[<v>sh-exported  %d@,sh-imported  %d@,sh-rejected  %d@]"
      t.shared_exported t.shared_imported t.shared_rejected

type t = {
  mutable prev : int array; (* var -> predecessor (towards front), 0 = none *)
  mutable next : int array; (* var -> successor (towards back), 0 = none *)
  mutable stamp : int array; (* var -> enqueue timestamp *)
  mutable num_vars : int;
  mutable head : int;
  mutable counter : int;
  mutable search : int; (* start point for pick; 0 = use head *)
}

let create ~num_vars =
  let prev = Array.make (num_vars + 1) 0 in
  let next = Array.make (num_vars + 1) 0 in
  let stamp = Array.make (num_vars + 1) 0 in
  for v = 1 to num_vars do
    prev.(v) <- (if v = 1 then 0 else v - 1);
    next.(v) <- (if v = num_vars then 0 else v + 1);
    stamp.(v) <- num_vars - v + 1
  done;
  {
    prev;
    next;
    stamp;
    num_vars;
    head = (if num_vars >= 1 then 1 else 0);
    counter = num_vars;
    search = 0;
  }

let unlink t v =
  let p = t.prev.(v) and n = t.next.(v) in
  if p <> 0 then t.next.(p) <- n else t.head <- n;
  if n <> 0 then t.prev.(n) <- p

let bump t v =
  if t.head <> v then begin
    if t.search = v then t.search <- t.next.(v);
    unlink t v;
    t.prev.(v) <- 0;
    t.next.(v) <- t.head;
    if t.head <> 0 then t.prev.(t.head) <- v;
    t.head <- v
  end;
  t.counter <- t.counter + 1;
  t.stamp.(v) <- t.counter;
  (* A freshly bumped variable is the best pick if unassigned. *)
  t.search <- 0

let pick t ~assigned =
  let start = if t.search <> 0 then t.search else t.head in
  let rec walk v =
    if v = 0 then None
    else if not (assigned v) then begin
      t.search <- v;
      Some v
    end
    else walk t.next.(v)
  in
  match walk start with
  | Some v -> Some v
  | None -> if start = t.head then None else walk t.head

let on_unassign t v =
  (* If the unassigned variable sits ahead of the cached pointer (has a
     newer stamp), restart the search from it. *)
  if t.search = 0 || t.stamp.(v) > t.stamp.(t.search) then t.search <- v

let front t = t.head

(* Incremental variable introduction: fresh variables join at the back
   of the queue (least recently used), mirroring the initial order. *)
let grow t ~num_vars =
  if num_vars > t.num_vars then begin
    let grow_int src =
      let dst = Array.make (num_vars + 1) 0 in
      Array.blit src 0 dst 0 (Array.length src);
      dst
    in
    t.prev <- grow_int t.prev;
    t.next <- grow_int t.next;
    t.stamp <- grow_int t.stamp;
    (* Find the current tail by walking from the head; growth is rare
       enough that the linear scan never shows up. *)
    let tail = ref t.head in
    while !tail <> 0 && t.next.(!tail) <> 0 do
      tail := t.next.(!tail)
    done;
    for v = t.num_vars + 1 to num_vars do
      t.prev.(v) <- !tail;
      t.next.(v) <- 0;
      t.stamp.(v) <- 0;
      if !tail = 0 then t.head <- v else t.next.(!tail) <- v;
      tail := v
    done;
    t.num_vars <- num_vars
  end

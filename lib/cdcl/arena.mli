(** Flat clause arena with copying garbage collection.

    All clauses live in one growable [int array]. A clause reference
    (cref) is the word offset of a three-word header (packed
    flags/glue/size, activity bits, clause id) followed by the literals
    inline. See DESIGN.md "Arena clause database" for the layout and
    the relocation rules. *)

type t

val create : ?capacity:int -> unit -> t

val alloc : t -> learned:bool -> glue:int -> cid:int -> size:int -> int
(** Allocates a clause of [size] literals (uninitialised — fill with
    {!set_lit}) and returns its cref. Activity starts at 0. *)

val alloc_lits : t -> learned:bool -> glue:int -> cid:int -> Cnf.Lit.t array -> int
(** {!alloc} plus literal initialisation from an array. *)

(** {2 Accessors} — [c] must be a valid, non-relocated cref. *)

val size : t -> int -> int
val lit : t -> int -> int -> Cnf.Lit.t
val set_lit : t -> int -> int -> Cnf.Lit.t -> unit
val swap_lits : t -> int -> int -> int -> unit
val glue : t -> int -> int
val set_glue : t -> int -> int -> unit
(** Glue saturates at 2^20 - 1. *)

val learned : t -> int -> bool
val used : t -> int -> bool
val set_used : t -> int -> unit
val clear_used : t -> int -> unit

val clear_learned : t -> int -> unit
(** Promote a learned clause to irredundant. Used when a learned clause
    subsumes an original: the original may then be deleted only if its
    subsumer is guaranteed to survive clause-database reduction. *)

val deleted : t -> int -> bool
val cid : t -> int -> int

(** {2 Tiers}

    Learned clauses carry a 2-bit tier tag ({!tier_local} <
    {!tier_mid} < {!tier_core}) and a saturating 2-bit usage counter in
    the packed header word; both survive relocation because the whole
    header is blitted. Freshly allocated clauses start at
    [tier_local] / usage 0. *)

val tier_local : int
val tier_mid : int
val tier_core : int
val tier : t -> int -> int

val set_tier : t -> int -> int -> unit
(** Raises [Invalid_argument] outside [tier_local..tier_core]. *)

val usage : t -> int -> int
val usage_max : int

val set_usage : t -> int -> int -> unit
(** Clamps to [0..usage_max]. *)

val bump_usage : t -> int -> unit
(** Saturating increment. *)

val activity : t -> int -> float
val set_activity : t -> int -> float -> unit

val activity_bits : t -> int -> int
(** Raw order-preserving integer encoding of the activity: comparing
    two clauses' activity bits orders them exactly like the floats
    (activities are non-negative). Feeds the packed reduce key without
    boxing. *)

val encode_activity : float -> int
val decode_activity : int -> float

val mark_deleted : t -> int -> unit
(** Flags the clause deleted and accounts its words as garbage.
    The storage is reclaimed by the next GC; the clause stays readable
    (e.g. for trace emission) until then. *)

val words : t -> int -> int
(** Total footprint of the clause in words (header + literals). *)

val shrink_size : t -> int -> int -> unit
(** [shrink_size a c n] truncates the clause to its first [n] literals
    in place (vivification). The freed tail words are accounted as
    garbage and reclaimed at the next GC, which copies only the live
    prefix. Raises [Invalid_argument] when [n] is 0 or exceeds the
    current size. *)

val live_words : t -> int

val garbage : t -> int
(** Words currently occupied by deleted clauses; the solver triggers a
    GC once this passes a fraction of {!total_words}. *)

val total_words : t -> int
val moved : t -> int -> bool

(** {2 Copying GC}

    Protocol: [let dst = gc_target a] — then [reloc ~from_:a ~into:dst]
    every live root in allocation order (clause vectors first for
    locality, then watchers and reasons, which find forwarding
    pointers) — then [adopt a dst]. Relocating a deleted clause is a
    programming error and raises [Invalid_argument]: callers must drop
    dead references instead of relocating them. *)

val gc_target : t -> t
val reloc : from_:t -> into:t -> int -> int
val adopt : t -> t -> unit

val lits_array : t -> int -> Cnf.Lit.t array
(** Fresh array copy of the literals (slow path: trace emission,
    tests). *)

(** {2 Raw access}

    Escape hatch for the BCP inner loop, which reads clause words
    directly to avoid per-access call and field-load overhead. The
    returned buffer is invalidated by any [alloc] or [adopt]; layout:
    word [c] is the packed header ([size = header lsr size_shift]),
    literal [k] (as its [Lit.to_index]) is word [c + lit_offset + k]. *)

val raw : t -> int array
val size_shift : int
val lit_offset : int

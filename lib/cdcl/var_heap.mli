(** Indexed max-heap over variables keyed by activity.

    The EVSIDS branching heuristic needs: extract the unassigned
    variable of maximum activity, reinsert variables on backtrack, and
    sift a variable up when its activity is bumped. Positions are
    tracked per variable so all operations are O(log n). *)

type t

val create : num_vars:int -> t
(** Heap over variables [1..num_vars], initially containing all of them
    with activity 0. *)

val mem : t -> int -> bool
(** Is the variable currently in the heap? *)

val insert : t -> int -> unit
(** No-op if already present. *)

val remove_max : t -> int
(** @raise Not_found when empty. *)

val is_empty : t -> bool
val size : t -> int

val activity : t -> int -> float

val bump : t -> int -> float -> unit
(** [bump h v inc] adds [inc] to [v]'s activity and restores heap order.
    Returns-less; call {!rescale} when activities overflow. *)

val rescale : t -> float -> unit
(** Multiply every activity by a factor (used to avoid float overflow). *)

val decay_check : t -> float
(** Largest activity currently stored (0 when all zero) — callers use it
    to decide when to rescale. *)

val grow : t -> num_vars:int -> unit
(** Extend the variable range to [1..num_vars]; fresh variables enter
    the heap with activity 0. No-op when [num_vars] is not larger than
    the current range. *)

type clause = { lits : Cnf.Lit.t array; glue : int; frequency : int }
type batch = { sender : int; epoch : int; clauses : clause list }

type error =
  | Truncated
  | Bad_magic
  | Bad_crc of { expected : string; actual : string }
  | Malformed of string

let error_to_string = function
  | Truncated -> "truncated blob"
  | Bad_magic -> "bad magic"
  | Bad_crc { expected; actual } ->
    Printf.sprintf "crc mismatch (expected %s, got %s)" expected actual
  | Malformed detail -> Printf.sprintf "malformed blob: %s" detail

let magic = "NSSHR1"

(* Hard ceilings so a corrupt count field cannot drive a huge
   allocation before the CRC is even consulted. *)
let max_clauses = 1_000_000
let max_clause_lits = 1_000_000

let encode b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int b.sender);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int b.epoch);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (List.length b.clauses));
  List.iter
    (fun c ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int c.glue);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int c.frequency);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (Array.length c.lits));
      Array.iter
        (fun l ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int (Cnf.Lit.to_dimacs l)))
        c.lits)
    b.clauses;
  let body = Buffer.contents buf in
  body ^ "#" ^ Runtime.Crc32.to_hex (Runtime.Crc32.string body) ^ ";"

exception Bad of error

(* Strict signed-decimal scanner over the body; anything else (empty
   field, stray characters, overflow) is malformed. *)
type scanner = { s : string; limit : int; mutable pos : int }

let next_int sc =
  if sc.pos >= sc.limit then raise (Bad (Malformed "missing field"));
  if sc.s.[sc.pos] <> ' ' then raise (Bad (Malformed "missing separator"));
  sc.pos <- sc.pos + 1;
  let neg = sc.pos < sc.limit && sc.s.[sc.pos] = '-' in
  if neg then sc.pos <- sc.pos + 1;
  let start = sc.pos in
  let v = ref 0 in
  while
    sc.pos < sc.limit
    &&
    let ch = sc.s.[sc.pos] in
    ch >= '0' && ch <= '9'
  do
    let d = Char.code sc.s.[sc.pos] - Char.code '0' in
    if !v > (max_int - d) / 10 then raise (Bad (Malformed "integer overflow"));
    v := (!v * 10) + d;
    sc.pos <- sc.pos + 1
  done;
  if sc.pos = start then raise (Bad (Malformed "empty integer"));
  if neg then - !v else !v

let decode_one s ~pos =
  match String.index_from_opt s pos ';' with
  | None -> Error Truncated
  | Some stop -> (
    let blob = String.sub s pos (stop - pos) in
    match String.rindex_opt blob '#' with
    | None -> Error (Malformed "missing checksum")
    | Some hash ->
      let body = String.sub blob 0 hash in
      let expected = String.sub blob (hash + 1) (String.length blob - hash - 1) in
      let actual = Runtime.Crc32.to_hex (Runtime.Crc32.string body) in
      if not (String.equal expected actual) then Error (Bad_crc { expected; actual })
      else if
        String.length body < String.length magic
        || not (String.equal (String.sub body 0 (String.length magic)) magic)
      then Error Bad_magic
      else begin
        let sc = { s = body; limit = String.length body; pos = String.length magic } in
        try
          let sender = next_int sc in
          let epoch = next_int sc in
          let count = next_int sc in
          if sender < 0 || epoch < 0 then raise (Bad (Malformed "negative header"));
          if count < 0 || count > max_clauses then
            raise (Bad (Malformed "clause count out of range"));
          let clauses = ref [] in
          for _ = 1 to count do
            let glue = next_int sc in
            let frequency = next_int sc in
            let n = next_int sc in
            if glue < 0 || frequency < 0 then
              raise (Bad (Malformed "negative clause field"));
            if n < 1 || n > max_clause_lits then
              raise (Bad (Malformed "literal count out of range"));
            let lits =
              Array.init n (fun _ ->
                  let d = next_int sc in
                  if d = 0 then raise (Bad (Malformed "zero literal"));
                  Cnf.Lit.of_dimacs d)
            in
            clauses := { lits; glue; frequency } :: !clauses
          done;
          if sc.pos <> sc.limit then raise (Bad (Malformed "trailing bytes"));
          Ok ({ sender; epoch; clauses = List.rev !clauses }, stop + 1)
        with Bad e -> Error e
      end)

let decode s =
  match decode_one s ~pos:0 with
  | Error e -> Error e
  | Ok (b, stop) ->
    if stop <> String.length s then Error (Malformed "trailing bytes after blob")
    else Ok b

let decode_all s =
  let rec go pos acc =
    if pos >= String.length s then Ok (List.rev acc)
    else
      match decode_one s ~pos with
      | Error e -> Error e
      | Ok (b, pos') -> go pos' (b :: acc)
  in
  go 0 []

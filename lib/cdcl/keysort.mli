(** Allocation-free in-place sort of three parallel [int array]s by
    ascending [(key, tie)].

    The reduce pass ranks clause-deletion candidates by the packed key
    of Fig. 5 with the clause id as tie-breaker, the cref riding along
    in [refs]. Sorting parallel scratch arrays in place replaces the
    seed solver's [List.sort] over [(clause, info)] pairs, which
    allocated a list cell, a tuple, and an info record per candidate
    per pass. *)

val sort : keys:int array -> tie:int array -> refs:int array -> len:int -> unit
(** Sorts the first [len] entries of the three arrays as one sequence
    of triples, ascending by [(key, tie)]. Quicksort with
    median-of-three pivots and an insertion-sort base case; not stable,
    which is irrelevant because [(key, tie)] pairs are unique when ties
    are clause ids. @raise Invalid_argument if [len] exceeds any
    array's length. *)

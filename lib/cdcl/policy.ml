type t =
  | Default
  | Frequency of { alpha : float }
  | Glue_only
  | Size_only
  | Activity
  | Random of int

let default_alpha = 0.8
let frequency_default = Frequency { alpha = default_alpha }

type clause_info = {
  id : int;
  glue : int;
  size : int;
  activity : float;
  frequency : int;
}

(* Manual loop over the literals: the seed solver built an
   [Array.map Lit.var] per candidate per reduce just to feed this. *)
let clause_frequency ~alpha ~f_max ~counts ~lits =
  if f_max = 0 then 0
  else begin
    let threshold = alpha *. float_of_int f_max in
    let n = ref 0 in
    for k = 0 to Array.length lits - 1 do
      let v = Cnf.Lit.var (Array.unsafe_get lits k) in
      if float_of_int (Array.unsafe_get counts v) > threshold then incr n
    done;
    !n
  end

(* Field widths for the packed key (Fig. 5). 20+20+20 = 60 bits fits a
   native OCaml int on 64-bit platforms. *)
let field_bits = 20
let field_mask = (1 lsl field_bits) - 1

let saturate x = if x > field_mask then field_mask else if x < 0 then 0 else x

(* [~x] of Fig. 5 within the field width: lower metric -> higher field. *)
let inverted x = field_mask - saturate x

let pack3 hi mid lo =
  (saturate hi lsl (2 * field_bits)) lor (saturate mid lsl field_bits) lor saturate lo

(* SplitMix64-style scrambling for the Random ablation policy. *)
let scramble seed id =
  let z = Int64.add (Int64.of_int id) (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int (Int64.shift_right_logical z 4)

let[@inline] activity_key activity =
  (* Monotone map of a non-negative float into an int key. *)
  let scaled = Float.min activity 1e15 in
  int_of_float (scaled *. 1000.0)

let key policy info =
  match policy with
  | Default -> pack3 0 (inverted info.glue) (inverted info.size)
  | Frequency _ -> pack3 (saturate info.frequency) (inverted info.glue) (inverted info.size)
  | Glue_only -> pack3 0 (inverted info.glue) 0
  | Size_only -> pack3 0 (inverted info.size) 0
  | Activity -> activity_key info.activity
  | Random seed -> scramble seed info.id land ((1 lsl 60) - 1)

(* Same ranking as [key] but from unboxed scalars, so the reduce pass
   can fill its scratch key array without allocating a [clause_info]
   per candidate. The activity arrives as the arena's order-preserving
   bit encoding. *)
let packed_key policy ~id ~glue ~size ~activity_bits ~frequency =
  match policy with
  | Default -> pack3 0 (inverted glue) (inverted size)
  | Frequency _ -> pack3 (saturate frequency) (inverted glue) (inverted size)
  | Glue_only -> pack3 0 (inverted glue) 0
  | Size_only -> pack3 0 (inverted size) 0
  | Activity -> activity_key (Arena.decode_activity activity_bits)
  | Random seed -> scramble seed id land ((1 lsl 60) - 1)

(* --- tiered clause database (inprocessing) --- *)

(* Every [packed_key] fits in 60 bits: [pack3] is 3x20 bits,
   [activity_key] is at most 1e18 < 2^60, [Random] is masked. Placing
   the tier above bit 60 makes one ranking sort delete local clauses
   before mid ones without a second pass. *)
let tiered_key policy ~tier ~id ~glue ~size ~activity_bits ~frequency =
  (tier lsl 60)
  lor (packed_key policy ~id ~glue ~size ~activity_bits ~frequency
      land ((1 lsl 60) - 1))

let initial_tier ~tier1_glue ~tier2_glue ~glue =
  if glue <= tier1_glue then Arena.tier_core
  else if glue <= tier2_glue then Arena.tier_mid
  else Arena.tier_local

(* Usage promotes local clauses to mid only. Core — the immortal tier —
   is entered exclusively on recomputed glue via {!initial_tier}: an
   activity signal as weak as "antecedent twice" would otherwise grow
   an undeletable set without bound and crowd out the deletion
   policy. *)
let promoted_tier ~promote_uses ~usage ~tier =
  if tier >= Arena.tier_mid then tier
  else if usage >= min promote_uses Arena.usage_max then Arena.tier_mid
  else tier

let compare_clauses policy a b =
  let c = Int.compare (key policy a) (key policy b) in
  if c <> 0 then c
  else Int.compare a.id b.id (* older clauses (smaller id) delete first *)

let needs_frequency = function
  | Frequency _ -> true
  | Default | Glue_only | Size_only | Activity | Random _ -> false

let alpha_of = function
  | Frequency { alpha } -> Some alpha
  | Default | Glue_only | Size_only | Activity | Random _ -> None

let name = function
  | Default -> "default"
  | Frequency { alpha } -> Printf.sprintf "frequency:%g" alpha
  | Glue_only -> "glue"
  | Size_only -> "size"
  | Activity -> "activity"
  | Random seed -> Printf.sprintf "random:%d" seed

let pp ppf p = Format.pp_print_string ppf (name p)

let of_string s =
  match String.split_on_char ':' s with
  | [ "default" ] -> Some Default
  | [ "frequency" ] -> Some frequency_default
  | [ "frequency"; a ] -> Option.map (fun alpha -> Frequency { alpha }) (float_of_string_opt a)
  | [ "glue" ] -> Some Glue_only
  | [ "size" ] -> Some Size_only
  | [ "activity" ] -> Some Activity
  | [ "random" ] -> Some (Random 0)
  | [ "random"; seed ] -> Option.map (fun s -> Random s) (int_of_string_opt seed)
  | _ -> None

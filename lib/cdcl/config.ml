type restart_mode =
  | No_restarts
  | Luby of int
  | Glucose of { fast_alpha : float; slow_alpha : float; margin : float }

type branching =
  | Evsids
  | Vmtf

type t = {
  policy : Policy.t;
  branching : branching;
  restart_mode : restart_mode;
  var_decay : float;
  clause_decay : float;
  reduce_first : int;
  reduce_inc : int;
  reduce_fraction : float;
  tier1_glue : int;
  phase_saving : bool;
  minimize : bool;
  max_conflicts : int option;
  max_propagations : int option;
  max_wall_seconds : float option;
  inprocess : bool;
  inprocess_interval : int;
  tier2_glue : int;
  promote_uses : int;
  vivify_budget : int;
  subsume_budget : int;
  inprocess_vivify : bool;
  inprocess_subsume : bool;
}

let default =
  {
    policy = Policy.Default;
    branching = Evsids;
    restart_mode = Luby 100;
    var_decay = 0.95;
    clause_decay = 0.999;
    reduce_first = 100;
    reduce_inc = 50;
    reduce_fraction = 0.5;
    tier1_glue = 2;
    phase_saving = true;
    minimize = true;
    max_conflicts = None;
    max_propagations = None;
    max_wall_seconds = None;
    inprocess = false;
    inprocess_interval = 4;
    tier2_glue = 6;
    promote_uses = 2;
    vivify_budget = 2_000;
    subsume_budget = 20_000;
    inprocess_vivify = true;
    inprocess_subsume = true;
  }

let with_policy policy t = { t with policy }

let with_inprocess ?interval enabled t =
  {
    t with
    inprocess = enabled;
    inprocess_interval =
      (match interval with Some i -> max 1 i | None -> t.inprocess_interval);
  }

let with_budget ?max_conflicts ?max_propagations ?max_wall_seconds t =
  let keep_or cur = function None -> cur | Some _ as v -> v in
  {
    t with
    max_conflicts = keep_or t.max_conflicts max_conflicts;
    max_propagations = keep_or t.max_propagations max_propagations;
    max_wall_seconds = keep_or t.max_wall_seconds max_wall_seconds;
  }

(** Variable-move-to-front decision queue.

    Kissat's focused-mode branching heuristic: variables live in a
    doubly-linked queue; bumping moves a variable to the front with a
    fresh enqueue timestamp, and decisions pick the unassigned variable
    closest to the front. A cached search pointer makes consecutive
    picks amortised O(1). *)

type t

val create : num_vars:int -> t
(** Queue over [1..num_vars], initially in index order (1 at front). *)

val bump : t -> int -> unit
(** Move the variable to the front. *)

val pick : t -> assigned:(int -> bool) -> int option
(** Frontmost variable for which [assigned] is false; [None] when all
    are assigned. *)

val on_unassign : t -> int -> unit
(** Tell the queue a variable became unassigned again (refreshes the
    search pointer). *)

val front : t -> int
(** Current front variable (most recently bumped). *)

val grow : t -> num_vars:int -> unit
(** Extend the variable range to [1..num_vars]; fresh variables join at
    the back of the queue. No-op when [num_vars] is not larger than the
    current range. *)

(** Mutable solver counters, snapshotted by the experiment harness. *)

type t = {
  mutable decisions : int;
  mutable conflicts : int;
  mutable propagations : int;  (** Assignments made by BCP. *)
  mutable restarts : int;
  mutable reduces : int;
  mutable learned_total : int;
  mutable deleted_total : int;
  mutable minimized_literals : int;
      (** Literals removed by learned-clause minimisation. *)
  mutable max_decision_level : int;
  mutable inprocess_passes : int;
      (** Inprocessing passes run (0 when {!Config.t.inprocess} is
          off). *)
  mutable vivified : int;  (** Clauses shrunk by vivification. *)
  mutable vivify_deleted : int;
      (** Clauses deleted outright by vivification. *)
  mutable subsumed : int;  (** Clauses removed by backward subsumption. *)
  mutable strengthened : int;
      (** Literals removed by self-subsuming resolution. *)
  mutable shared_exported : int;
      (** Clauses exported to portfolio peers (0 without sharing). *)
  mutable shared_imported : int;
      (** Foreign clauses RUP-validated and attached. *)
  mutable shared_rejected : int;
      (** Foreign clauses dropped (duplicate, redundant, or not
          unit-derivable here). *)
}

val create : unit -> t
val copy : t -> t
val pp : Format.formatter -> t -> unit

(** Record-based reference CDCL solver for differential testing.

    Implements exactly the same search semantics as {!Cdcl.Solver} —
    blocking-literal watchers, binary-clause inlining, quantised clause
    activities, identical reduce ranking and schedule — but stores
    clauses as plain OCaml records instead of the flat integer arena.
    Since only the memory layout differs, both solvers must produce
    identical verdicts, statistics, and learned/deleted traces on every
    input under every configuration; a divergence pinpoints a bug in
    the arena, the watcher encoding, the packed ranking key, or the
    compaction pass. Assumption solving is not supported (the
    differential suite drives plain {!solve}). *)

type result = Cdcl.Solver.result =
  | Sat of bool array
  | Unsat
  | Unknown

type t

val create : ?config:Cdcl.Config.t -> Cnf.Formula.t -> t
val solve : t -> result

val stats : t -> Cdcl.Solver_stats.t
val num_vars : t -> int
val learned_clause_count : t -> int
val propagation_counts : t -> int array

val set_trace : t -> (Cdcl.Solver.trace_event -> unit) -> unit
(** Emits the same event stream as {!Cdcl.Solver.set_trace}. *)

val solve_formula :
  ?config:Cdcl.Config.t -> Cnf.Formula.t -> result * Cdcl.Solver_stats.t

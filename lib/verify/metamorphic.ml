(* Satisfiability-preserving transforms used by the fuzz harness. *)

type transform =
  | Permute_vars
  | Shuffle_clauses
  | Flip_polarity
  | Duplicate_clauses
  | Inject_tautologies

let all =
  [ Permute_vars; Shuffle_clauses; Flip_polarity; Duplicate_clauses; Inject_tautologies ]

let name = function
  | Permute_vars -> "permute-vars"
  | Shuffle_clauses -> "shuffle-clauses"
  | Flip_polarity -> "flip-polarity"
  | Duplicate_clauses -> "duplicate-clauses"
  | Inject_tautologies -> "inject-tautologies"

let clauses_of f =
  Array.init (Cnf.Formula.num_clauses f) (Cnf.Formula.clause f)

let rebuild ~num_vars clauses = Cnf.Formula.create ~num_vars clauses

let permute_vars rng f =
  let n = Cnf.Formula.num_vars f in
  let order = Array.init n (fun i -> i + 1) in
  Util.Rng.shuffle rng order;
  let perm = Array.make (n + 1) 0 in
  Array.iteri (fun i v -> perm.(i + 1) <- v) order;
  Cnf.Formula.relabel f ~perm

let flip_polarity rng f =
  let n = Cnf.Formula.num_vars f in
  let flip = Array.init (n + 1) (fun v -> v >= 1 && Util.Rng.bool rng) in
  let map_lit lit = if flip.(Cnf.Lit.var lit) then Cnf.Lit.negate lit else lit in
  rebuild ~num_vars:n (Array.map (Array.map map_lit) (clauses_of f))

let duplicate_clauses rng f =
  let clauses = clauses_of f in
  let m = Array.length clauses in
  if m = 0 then f
  else begin
    let extra = 1 + Util.Rng.int rng (max 1 (m / 2)) in
    let dups = Array.init extra (fun _ -> clauses.(Util.Rng.int rng m)) in
    rebuild ~num_vars:(Cnf.Formula.num_vars f) (Array.append clauses dups)
  end

let inject_tautologies rng f =
  let n = Cnf.Formula.num_vars f in
  if n = 0 then f
  else begin
    let taut () =
      let v = Util.Rng.int_in rng 1 n in
      let filler = Cnf.Lit.make (Util.Rng.int_in rng 1 n) (Util.Rng.bool rng) in
      [| Cnf.Lit.pos v; Cnf.Lit.neg v; filler |]
    in
    let extra = Array.init (1 + Util.Rng.int rng 3) (fun _ -> taut ()) in
    rebuild ~num_vars:n (Array.append (clauses_of f) extra)
  end

let apply rng t f =
  match t with
  | Permute_vars -> permute_vars rng f
  | Shuffle_clauses -> Cnf.Formula.shuffle rng f
  | Flip_polarity -> flip_polarity rng f
  | Duplicate_clauses -> duplicate_clauses rng f
  | Inject_tautologies -> inject_tautologies rng f

(** Reference DPLL oracle.

    A deliberately simple solver used as ground truth when
    differential-testing {!Cdcl.Solver}: chronological backtracking,
    fixpoint unit propagation by whole-database scanning, first
    unassigned variable branching. No learning, no heuristics, no
    clause deletion — nothing that could share a bug with the solver
    under test. Quadratic propagation keeps it honest and keeps it
    slow, so use it on the small instances the fuzzer generates. *)

type verdict =
  | Sat of bool array
      (** Model indexed by variable, index 0 unused — the same
          convention as {!Cdcl.Solver.check_model}. *)
  | Unsat

val solve : ?max_nodes:int -> Cnf.Formula.t -> verdict option
(** [solve f] decides [f] by exhaustive DPLL search. [None] when the
    search tree exceeds [max_nodes] (default 500_000) — the caller
    should then skip the oracle comparison rather than trust a partial
    answer. *)

val verdict_name : verdict -> string

(* Fault-injection scenarios: arm Runtime.Fault (or corrupt files by
   hand), drive the real recovery code, assert the documented outcome. *)

module Fault = Runtime.Fault
module Error = Runtime.Error
module Mat = Tensor.Mat

type outcome = {
  scenario : string;
  passed : bool;
  detail : string;
}

type report = {
  seed : int;
  outcomes : outcome list;
}

let passed r = List.for_all (fun o -> o.passed) r.outcomes

let pp_report ppf r =
  Format.fprintf ppf "faultcheck: seed %d, %d scenarios, %d failed@." r.seed
    (List.length r.outcomes)
    (List.length (List.filter (fun o -> not o.passed) r.outcomes));
  List.iter
    (fun o ->
      Format.fprintf ppf "  [%s] %-32s %s@."
        (if o.passed then "OK" else "FAIL")
        o.scenario o.detail)
    r.outcomes

(* --- scaffolding --- *)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d = Filename.concat base (Printf.sprintf "nsfault-%d-%d" (Unix.getpid ()) i) in
    if Sys.file_exists d then go (i + 1)
    else begin
      Sys.mkdir d 0o755;
      d
    end
  in
  go 0

let scenario name f =
  let passed, detail =
    match f () with
    | detail -> (true, detail)
    | exception e -> (false, "raised " ^ Printexc.to_string e)
  in
  Fault.disarm ();
  (* Scenario isolation: the selector breaker and the clock source are
     process-wide; a scenario that tripped or faked them must not leak
     into the next. *)
  Core.Selector.configure_breaker Core.Selector.default_breaker_config;
  Runtime.Clock.use_wall_clock ();
  { scenario = name; passed; detail }

let check cond msg = if not cond then failwith msg

let params_of_floats name values =
  [ Nn.Param.create name (Mat.row_vector (Array.of_list values)) ]

let param_values (ps : Nn.Param.t list) =
  List.concat_map
    (fun (p : Nn.Param.t) ->
      let v = p.Nn.Param.value in
      List.init (Mat.rows v * Mat.cols v) (fun k ->
          Mat.get v (k / Mat.cols v) (k mod Mat.cols v)))
    ps

(* --- checkpoint scenarios --- *)

let torn_write_falls_back ~seed ~dir () =
  let path = Filename.concat dir "torn.ckpt" in
  let good = params_of_floats "w" [ 1.0; 2.0; 3.0 ] in
  Nn.Checkpoint.save path good;
  (* Second save is torn mid-write: the intact first save was promoted
     to .bak, the primary holds half a file. *)
  Fault.arm ~seed ~limit:1 [ Fault.Torn_checkpoint_write ];
  let updated = params_of_floats "w" [ 9.0; 9.0; 9.0 ] in
  Nn.Checkpoint.save path updated;
  Fault.disarm ();
  check (Fault.fired_count Fault.Torn_checkpoint_write <= 1) "fault fired twice";
  let restored = params_of_floats "w" [ 0.0; 0.0; 0.0 ] in
  match Nn.Checkpoint.load_result path restored with
  | Ok Nn.Checkpoint.Backup ->
    check (param_values restored = [ 1.0; 2.0; 3.0 ]) "backup values wrong";
    "torn primary detected; .bak restored the last-good weights"
  | Ok Nn.Checkpoint.Primary -> failwith "torn primary loaded as intact"
  | Error e -> failwith ("no fallback: " ^ Error.to_string e)

let bit_flip_falls_back ~seed ~dir () =
  let path = Filename.concat dir "flip.ckpt" in
  let good = params_of_floats "w" [ 4.0; 5.0 ] in
  Nn.Checkpoint.save path good;
  Fault.arm ~seed ~limit:1 [ Fault.Checkpoint_bit_flip ];
  Nn.Checkpoint.save path (params_of_floats "w" [ 7.0; 7.0 ]);
  Fault.disarm ();
  let restored = params_of_floats "w" [ 0.0; 0.0 ] in
  match Nn.Checkpoint.load_result path restored with
  | Ok Nn.Checkpoint.Backup ->
    check (param_values restored = [ 4.0; 5.0 ]) "backup values wrong";
    "CRC caught the bit flip; .bak restored the last-good weights"
  | Ok Nn.Checkpoint.Primary -> failwith "bit-flipped checkpoint passed CRC"
  | Error e -> failwith ("no fallback: " ^ Error.to_string e)

let corruption_without_backup ~seed:_ ~dir () =
  let path = Filename.concat dir "orphan.ckpt" in
  let good = params_of_floats "w" [ 1.0 ] in
  Nn.Checkpoint.save path good;
  (* Flip one payload byte by hand; no .bak exists for this path. *)
  let text =
    match Runtime.Atomic_file.read path with Ok t -> t | Error _ -> failwith "read"
  in
  let b = Bytes.of_string text in
  Bytes.set b (Bytes.length b - 2) 'X';
  (match Runtime.Atomic_file.write_raw path (Bytes.to_string b) with
  | Ok () -> ()
  | Error e -> failwith (Error.to_string e));
  let restored = params_of_floats "w" [ 0.0 ] in
  match Nn.Checkpoint.load_result path restored with
  | Error (Error.Corrupt _) ->
    check (param_values restored = [ 0.0 ]) "params mutated despite corruption";
    "typed Corrupt error; parameters left untouched"
  | Error e -> failwith ("wrong error class: " ^ Error.to_string e)
  | Ok _ -> failwith "corrupt checkpoint accepted"

let duplicate_parameter_rejected ~seed:_ ~dir:_ () =
  let p = params_of_floats "w" [ 1.0; 2.0 ] in
  let doubled = Nn.Checkpoint.to_string p ^ Nn.Checkpoint.to_string p in
  let target = params_of_floats "w" [ 0.0; 0.0 ] in
  match Nn.Checkpoint.of_string_result doubled target with
  | Error (Error.Corrupt { detail; _ }) ->
    check
      (String.length detail >= 9 && String.sub detail 0 9 = "duplicate")
      ("wrong detail: " ^ detail);
    "duplicate parameter block raised a typed error"
  | Error e -> failwith ("wrong error class: " ^ Error.to_string e)
  | Ok () -> failwith "duplicate parameter block accepted"

(* --- training scenario --- *)

let poisoned_gradient_recovers ~seed ~dir:_ () =
  let rng = Util.Rng.create seed in
  let mlp = Nn.Layer.Mlp.create rng ~dims:[ 2; 4; 1 ] ~name:"fault" in
  let spec =
    {
      Nn.Train.params = Nn.Layer.Mlp.params mlp;
      forward = (fun tape m -> Nn.Layer.Mlp.forward tape mlp (Nn.Ad.const tape m));
    }
  in
  let examples =
    Array.init 16 (fun _ ->
        let v = Array.init 2 (fun _ -> Util.Rng.uniform rng (-1.0) 1.0) in
        (Mat.row_vector v, v.(0) +. v.(1) > 0.0))
  in
  let lr = 0.05 in
  Fault.arm ~seed ~limit:2 [ Fault.Poisoned_gradient ];
  let history = Nn.Train.fit ~epochs:4 ~lr ~seed spec examples in
  Fault.disarm ();
  check (Fault.fired_count Fault.Poisoned_gradient = 0) "fault state leaked";
  check (history.Nn.Train.skipped_steps >= 1) "no step was skipped";
  check (history.Nn.Train.lr_backoffs >= 1) "learning rate never backed off";
  check (history.Nn.Train.final_lr < lr) "learning rate did not shrink";
  Array.iter
    (fun l -> check (Float.is_finite l) "non-finite epoch loss leaked")
    history.Nn.Train.epoch_losses;
  List.iter
    (fun (p : Nn.Param.t) ->
      for i = 0 to Mat.rows p.Nn.Param.value - 1 do
        for j = 0 to Mat.cols p.Nn.Param.value - 1 do
          check
            (Float.is_finite (Mat.get p.Nn.Param.value i j))
            "NaN leaked into the weights"
        done
      done)
    spec.Nn.Train.params;
  Printf.sprintf "skipped %d step(s), %d backoff(s), final lr %.2e, weights finite"
    history.Nn.Train.skipped_steps history.Nn.Train.lr_backoffs
    history.Nn.Train.final_lr

(* --- inference scenarios --- *)

let small_formula =
  Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ]

let inference_failure_degrades ~seed ~dir:_ () =
  let model = Core.Model.create Core.Model.small_config in
  Fault.arm ~seed ~limit:1 [ Fault.Inference_failure ];
  let s = Core.Selector.select_policy model small_formula in
  (match s.Core.Selector.degraded with
  | Some (Core.Selector.Model_failure _) -> ()
  | Some _ | None -> failwith "degradation not recorded");
  check (s.Core.Selector.policy = Cdcl.Policy.Default) "did not fall back to default";
  (* The fault is exhausted: the next selection works normally. *)
  let s2 = Core.Selector.select_policy model small_formula in
  Fault.disarm ();
  check (s2.Core.Selector.degraded = None) "degradation persisted after recovery";
  check (Float.is_finite s2.Core.Selector.probability) "recovered probability not finite";
  "failed inference fell back to the default policy and recovered on the next call"

let non_finite_probability_degrades ~seed:_ ~dir:_ () =
  let model = Core.Model.create Core.Model.small_config in
  (* A NaN in the output layer is what loading a silently corrupted
     checkpoint used to produce; it propagates straight to the
     predicted probability. (Hidden-layer NaNs can be masked by relu,
     whose [x > 0] test is false for NaN.) *)
  (match List.rev (Core.Model.params model) with
  | [] -> failwith "model has no parameters"
  | p :: _ -> Mat.set p.Nn.Param.value 0 0 Float.nan);
  let s = Core.Selector.select_policy model small_formula in
  (match s.Core.Selector.degraded with
  | Some (Core.Selector.Non_finite_probability _) -> ()
  | Some _ | None -> failwith "non-finite output not detected");
  check (s.Core.Selector.policy = Cdcl.Policy.Default) "did not fall back to default";
  "NaN probability detected; default policy substituted"

(* --- campaign scenarios --- *)

let tiny_instances ~seed n =
  List.init n (fun i ->
      let rng = Util.Rng.create ((seed * 613) + i) in
      let num_vars = 6 + i in
      {
        Gen.Dataset.name = Printf.sprintf "fault-%02d" i;
        family = "ksat";
        year = 2022;
        formula =
          Gen.Ksat.generate rng ~num_vars ~num_clauses:(3 * num_vars) ~k:3;
      })

let instance_crash_retried ~seed ~dir:_ () =
  let model = Core.Model.create Core.Model.small_config in
  let simtime = Experiments.Simtime.make ~budget:50_000 in
  let instances = tiny_instances ~seed 3 in
  Fault.arm ~seed ~limit:1 [ Fault.Instance_crash ];
  let result = Experiments.Adaptive_eval.run model simtime instances in
  let fired = Fault.fired_count Fault.Instance_crash in
  Fault.disarm ();
  check (fired = 1) "crash fault never fired";
  check (result.Experiments.Adaptive_eval.failures = []) "retry did not absorb the crash";
  check
    (List.length result.Experiments.Adaptive_eval.entries = 3)
    "an instance went missing";
  "one injected crash, absorbed by the per-instance retry; all entries present"

let campaign_resumes_from_journal ~seed ~dir () =
  let model = Core.Model.create Core.Model.small_config in
  let simtime = Experiments.Simtime.make ~budget:50_000 in
  let instances = tiny_instances ~seed 4 in
  let journal = Filename.concat dir "campaign.jsonl" in
  (* Reference: the uninterrupted campaign. *)
  let full = Experiments.Adaptive_eval.run model simtime instances in
  (* "Kill" the campaign after two instances by only running a prefix,
     then tear the journal's final line as a SIGKILL would. *)
  let prefix = [ List.nth instances 0; List.nth instances 1 ] in
  let interrupted =
    Experiments.Adaptive_eval.run ~journal model simtime prefix
  in
  check (List.length interrupted.Experiments.Adaptive_eval.entries = 2) "prefix run broken";
  (match Runtime.Atomic_file.read journal with
  | Ok text ->
    let torn = String.sub text 0 (String.length text - 7) ^ "{\"name\":\"half" in
    (match Runtime.Atomic_file.write_raw journal torn with
    | Ok () -> ()
    | Error e -> failwith (Error.to_string e))
  | Error e -> failwith (Error.to_string e));
  let resumed = Experiments.Adaptive_eval.run ~journal model simtime instances in
  check
    (resumed.Experiments.Adaptive_eval.resumed >= 1)
    "nothing was resumed from the journal";
  check
    (List.length resumed.Experiments.Adaptive_eval.entries = 4)
    "resumed campaign lost instances";
  let names r =
    List.map (fun (e : Experiments.Adaptive_eval.entry) -> e.name)
      r.Experiments.Adaptive_eval.entries
  in
  check (names resumed = names full) "entry order diverged from the full run";
  Printf.sprintf "resumed %d/4 instances from a torn journal; campaign completed"
    resumed.Experiments.Adaptive_eval.resumed

(* --- supervision scenarios --- *)

module Supervisor = Runtime.Supervisor
module Pool = Runtime.Pool

(* A worker SIGKILLed mid-solve is retried by the pool and the
   campaign still completes with every entry present. *)
let worker_killed_retried ~seed ~dir:_ () =
  let model = Core.Model.create Core.Model.small_config in
  let simtime = Experiments.Simtime.make ~budget:50_000 in
  let instances = tiny_instances ~seed 3 in
  Fault.arm ~seed ~limit:1 [ Fault.Worker_crash ];
  let result = Experiments.Adaptive_eval.run ~jobs:2 model simtime instances in
  let fired = Fault.fired_count Fault.Worker_crash in
  Fault.disarm ();
  check (fired = 1) "worker-crash fault never fired";
  check
    (result.Experiments.Adaptive_eval.failures = [])
    "retry did not absorb the SIGKILLed worker";
  check
    (List.length result.Experiments.Adaptive_eval.entries = 3)
    "an instance went missing after the worker was killed";
  "one worker SIGKILLed mid-solve; the pool retried it and the campaign completed"

(* A worker that blows past the address-space cap fails alone —
   [Out_of_memory] inside the child — without taking down the pool. *)
let worker_rss_reaped ~seed:_ ~dir:_ () =
  let limits =
    { Supervisor.default_limits with mem_limit_mb = Some 1024 }
  in
  let tasks =
    [
      ("small-a", fun () -> Ok "a");
      ( "hog",
        fun () ->
          (* 2 GiB against a 1 GiB address-space cap: malloc fails in
             the child, which reports Out_of_memory as its result. *)
          let b = Bytes.create (2 * 1024 * 1024 * 1024) in
          Ok (string_of_int (Bytes.length b)) );
      ("small-b", fun () -> Ok "b");
    ]
  in
  let batch =
    Pool.run_list ~jobs:2 ~max_retries:0 ~limits
      ~should_stop:(fun () -> false)
      tasks
  in
  check (batch.Pool.not_run = []) "pool stopped early";
  let find id =
    List.find (fun (c : Pool.completion) -> c.Pool.id = id)
      batch.Pool.completions
  in
  let contains_sub ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (match (find "hog").Pool.outcome with
  | Pool.Failed msg ->
    check
      (contains_sub ~sub:"memory" (String.lowercase_ascii msg))
      ("hog failed for the wrong reason: " ^ msg)
  | Pool.Done payload -> failwith ("RSS cap not enforced: hog returned " ^ payload)
  | Pool.Shed -> failwith "hog was shed, not run");
  List.iter
    (fun id ->
      match (find id).Pool.outcome with
      | Pool.Done _ -> ()
      | _ -> failwith (id ^ " did not survive the hog's OOM"))
    [ "small-a"; "small-b" ];
  "RSS-capped worker died of Out_of_memory alone; both siblings completed"

(* A hung worker (heartbeats stop) is detected by the watchdog within
   hang_factor (= 2) heartbeat intervals, reaped, and retried. *)
let worker_hang_watchdog ~seed ~dir:_ () =
  let limits =
    {
      Supervisor.default_limits with
      heartbeat_interval = 0.1;
      grace_seconds = 0.2;
    }
  in
  let watchdog_bound = limits.Supervisor.heartbeat_interval *. limits.Supervisor.hang_factor in
  Fault.arm ~seed ~limit:1 [ Fault.Worker_hang ];
  let verdict = Supervisor.run ~label:"hang" limits (fun () -> Ok "never") in
  check (Fault.fired_count Fault.Worker_hang = 1) "worker-hang fault never fired";
  let silence =
    match verdict with
    | Supervisor.Hung s -> s
    | v ->
      failwith ("expected a Hung verdict, got " ^ Supervisor.verdict_to_string v)
  in
  check (silence >= watchdog_bound) "watchdog fired before the silence bound";
  check (silence <= watchdog_bound +. 0.3) "hang detected late";
  check (Supervisor.retryable verdict) "hang not classified as retryable";
  (* Through the pool: the hang is absorbed by a retry. *)
  Fault.arm ~seed ~limit:1 [ Fault.Worker_hang ];
  let batch =
    Pool.run_list ~jobs:1 ~limits
      ~should_stop:(fun () -> false)
      [ ("t", fun () -> Ok "ok") ]
  in
  Fault.disarm ();
  (match batch.Pool.completions with
  | [ { Pool.outcome = Pool.Done "ok"; attempts; _ } ] ->
    check (attempts = 2) "hang retry count wrong"
  | _ -> failwith "pool did not absorb the hang with a retry");
  Printf.sprintf
    "hang detected after %.2fs silence (bound %.2fs); pool retry absorbed it"
    silence watchdog_bound

(* Tripping the breaker degrades every selection to the default policy
   without consulting the model; after the cooldown a half-open trial
   succeeds and the model path is restored. *)
let breaker_trip_recovers ~seed ~dir:_ () =
  let model = Core.Model.create Core.Model.small_config in
  Core.Selector.configure_breaker
    {
      Core.Selector.breaker =
        {
          Runtime.Breaker.failure_threshold = 3;
          cooldown_seconds = 0.2;
          half_open_trials = 1;
        };
      slow_call_seconds = None;
    };
  Fault.arm ~seed ~limit:1 [ Fault.Breaker_trip ];
  let s = Core.Selector.select_policy model small_formula in
  Fault.disarm ();
  check
    (s.Core.Selector.degraded = Some Core.Selector.Breaker_open)
    "forced trip not recorded as Breaker_open";
  check (s.Core.Selector.policy = Cdcl.Policy.Default) "trip did not select default";
  (* While open, every selection short-circuits. *)
  for _ = 1 to 3 do
    let s' = Core.Selector.select_policy model small_formula in
    check
      (s'.Core.Selector.degraded = Some Core.Selector.Breaker_open)
      "open breaker still consulted the model"
  done;
  check
    (Core.Selector.breaker_state () = Runtime.Breaker.Open)
    "breaker not open after the trip";
  check (Core.Selector.breaker_trip_count () >= 1) "trip not counted";
  (* Cooldown elapses on the wall clock; the next selection is the
     half-open trial, succeeds, and closes the breaker. *)
  Unix.sleepf 0.25;
  let s3 = Core.Selector.select_policy model small_formula in
  check (s3.Core.Selector.degraded = None) "half-open trial did not reach the model";
  check
    (Float.is_finite s3.Core.Selector.probability)
    "restored model path returned a bad probability";
  check
    (Core.Selector.breaker_state () = Runtime.Breaker.Closed)
    "successful half-open trial did not close the breaker";
  "breaker trip short-circuited selections to default; half-open recovery restored the model path"

(* --- inprocessing scenario --- *)

(* An abort mid-vivification escapes the solve as a typed runtime
   error. The DRUP prefix emitted up to the abort must still replay
   line by line (inprocessing commits each rewrite atomically: the Add
   precedes the Delete it justifies), and a fresh solve with the fault
   exhausted must recover the verdict with a complete, valid proof. *)
let inprocess_abort_recovers ~seed ~dir:_ () =
  let f = Gen.Pigeonhole.unsat 5 in
  let config =
    Cdcl.Config.with_inprocess ~interval:1 true
      {
        Cdcl.Config.default with
        Cdcl.Config.policy = Cdcl.Policy.frequency_default;
        reduce_first = 20;
        reduce_inc = 10;
        reduce_fraction = 0.7;
        restart_mode = Cdcl.Config.Luby 8;
      }
  in
  let t = Cdcl.Solver.create ~config f in
  let drup = Cdcl.Drup.create () in
  Cdcl.Solver.set_trace t (fun ev -> Cdcl.Drup.event drup ev);
  Fault.arm ~seed ~limit:1 [ Fault.Inprocess_abort ];
  (match Cdcl.Solver.solve t with
  | exception Error.Runtime_error (Error.Injected_fault { point }) ->
    check (point = "inprocess-abort") ("wrong fault point: " ^ point)
  | _ -> failwith "abort never escaped the solve");
  let fired = Fault.fired_count Fault.Inprocess_abort in
  check (fired = 1) "fault did not fire exactly once";
  let prefix_lines = Cdcl.Drup.num_lines drup in
  check (prefix_lines > 0) "abort left no proof prefix to check";
  (* Replaying the prefix must fail only for being incomplete — every
     emitted line must itself be RUP. *)
  (match Cdcl.Drup_check.check f (Cdcl.Drup.to_string drup) with
  | Cdcl.Drup_check.Invalid { reason = "proof does not derive the empty clause"; _ }
    ->
    ()
  | Cdcl.Drup_check.Valid -> failwith "aborted solve produced a complete proof"
  | Cdcl.Drup_check.Invalid { line; reason } ->
    failwith
      (Printf.sprintf "proof prefix broken at line %d: %s" line reason));
  (* Recovery: the fault budget is exhausted, so a fresh solve runs the
     same inprocessing schedule to completion. *)
  let t2 = Cdcl.Solver.create ~config f in
  let drup2 = Cdcl.Drup.create () in
  Cdcl.Solver.set_trace t2 (fun ev -> Cdcl.Drup.event drup2 ev);
  (match Cdcl.Solver.solve t2 with
  | Cdcl.Solver.Unsat -> ()
  | _ -> failwith "recovered solve lost the UNSAT verdict");
  check
    (Fault.fired_count Fault.Inprocess_abort = 1)
    "exhausted fault fired again";
  Fault.disarm ();
  Cdcl.Drup.conclude_unsat drup2;
  (match Cdcl.Drup_check.check_solver_proof f drup2 with
  | Cdcl.Drup_check.Valid -> ()
  | Cdcl.Drup_check.Invalid { line; reason } ->
    failwith
      (Printf.sprintf "recovered proof invalid at line %d: %s" line reason));
  Printf.sprintf
    "abort after %d proof lines left a checkable prefix; fresh solve recovered \
     UNSAT with a valid proof"
    prefix_lines

(* A --jobs 4 campaign writes a journal byte-equivalent (modulo
   ordering) to the sequential run. A deterministic fake clock makes
   the measured inference times identical across processes. *)
let parallel_journal_equivalence ~seed ~dir () =
  let model = Core.Model.create Core.Model.small_config in
  let simtime = Experiments.Simtime.make ~budget:50_000 in
  let instances = tiny_instances ~seed 4 in
  let counter = ref 0.0 in
  Runtime.Clock.set_source (fun () ->
      counter := !counter +. 0.001;
      !counter);
  let seq_path = Filename.concat dir "seq.jsonl" in
  let par_path = Filename.concat dir "par.jsonl" in
  let seq =
    Experiments.Adaptive_eval.run ~journal:seq_path model simtime instances
  in
  let par =
    Experiments.Adaptive_eval.run ~journal:par_path ~jobs:4 model simtime
      instances
  in
  Runtime.Clock.use_wall_clock ();
  check
    (seq.Experiments.Adaptive_eval.failures = []
    && par.Experiments.Adaptive_eval.failures = [])
    "a campaign recorded failures";
  check
    (List.length seq.Experiments.Adaptive_eval.entries = 4
    && List.length par.Experiments.Adaptive_eval.entries = 4)
    "a campaign lost instances";
  let lines p =
    match Runtime.Atomic_file.read p with
    | Ok t ->
      String.split_on_char '\n' t
      |> List.filter (fun l -> l <> "")
      |> List.sort compare
    | Error e -> failwith (Error.to_string e)
  in
  let seq_lines = lines seq_path and par_lines = lines par_path in
  check (List.length seq_lines = 4) "sequential journal incomplete";
  check (seq_lines = par_lines) "parallel journal diverged from sequential";
  Printf.sprintf "4-job journal byte-equivalent to sequential (%d lines)"
    (List.length seq_lines)

(* --- WAL / durable-session scenarios --- *)

module Wal = Runtime.Wal
module Store = Nserve.Session_store

let wal_store_config dir =
  { Store.default_config with Store.wal_dir = Some dir }

let store_ok t ?key ~sid op =
  let o = Store.apply t ?key ~sid op in
  match o.Store.reply with
  | Ok fields -> (o.Store.replayed, fields)
  | Error msg -> failwith (Printf.sprintf "op on %s refused: %s" sid msg)

let subdir dir name =
  let d = Filename.concat dir name in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

(* A torn append (half a frame reaches the disk before the "crash")
   must not be acked, and recovery must truncate the tail back to the
   exact durable prefix — no record lost, no garbage replayed. *)
let wal_torn_append_truncates ~seed ~dir () =
  let d = subdir dir "wal-torn" in
  let durable = [ "alpha"; "beta"; "gamma" ] in
  (match Wal.open_dir d with
  | Error e -> failwith (Error.to_string e)
  | Ok (wal, _) ->
    List.iter
      (fun p ->
        match Wal.append wal p with
        | Ok _ -> ()
        | Error e -> failwith (Error.to_string e))
      durable;
    Fault.arm ~seed ~limit:1 [ Fault.Wal_torn_append ];
    (match Wal.append wal "torn-victim" with
    | Error (Error.Injected_fault { point }) ->
      check (point = "wal-torn-append") ("wrong fault point: " ^ point)
    | Ok _ -> failwith "torn append was acked"
    | Error e -> failwith ("wrong error class: " ^ Error.to_string e));
    Fault.disarm ();
    (* The handle is poisoned (the process "died"); further appends
       must refuse rather than write after the tear. *)
    (match Wal.append wal "after-tear" with
    | Error _ -> ()
    | Ok _ -> failwith "append succeeded on a torn log");
    Wal.close wal);
  match Wal.open_dir d with
  | Error e -> failwith ("recovery failed: " ^ Error.to_string e)
  | Ok (wal2, recovery) ->
    check (recovery.Wal.truncated_bytes > 0) "no torn tail was truncated";
    check
      (List.map snd recovery.Wal.records = durable)
      "recovered records are not the exact durable prefix";
    (* The log keeps working: the next append takes the next LSN. *)
    (match Wal.append wal2 "delta" with
    | Ok lsn -> check (lsn = 1 + List.length durable) "LSN sequence broken"
    | Error e -> failwith (Error.to_string e));
    Wal.close wal2;
    Printf.sprintf
      "torn tail truncated (%d bytes); exact %d-record durable prefix recovered"
      recovery.Wal.truncated_bytes (List.length durable)

(* A crash after the WAL write but before the fsync: the op is never
   acked, yet may survive in the log. The client's keyed retry against
   the recovered store must be answered exactly once — from the dedup
   cache the replay rebuilt, not by a second execution. *)
let wal_crash_before_fsync_exactly_once ~seed ~dir () =
  let d = subdir dir "wal-fsync" in
  let cfg = wal_store_config d in
  (match Store.create cfg with
  | Error e -> failwith (Error.to_string e)
  | Ok (store, _) ->
    ignore (store_ok store ~key:"k-new" ~sid:"s0" (Store.New 2));
    ignore (store_ok store ~key:"k-add1" ~sid:"s0" (Store.Add "1 2 0"));
    Fault.arm ~seed ~limit:1 [ Fault.Wal_crash_before_fsync ];
    (match (Store.apply store ~key:"k-add2" ~sid:"s0" (Store.Add "-1 0")).Store.reply with
    | Error _ -> () (* not durable -> not acked *)
    | Ok _ -> failwith "unsynced append was acked");
    Fault.disarm ();
    (* State untouched: the refused op must not have executed. *)
    (match Store.info store "s0" with
    | Some (_, 1) -> ()
    | Some (_, n) -> failwith (Printf.sprintf "refused add executed (%d clauses)" n)
    | None -> failwith "session vanished");
    (* Process dies here: abandon the store without closing. *))
  ;
  match Store.create (wal_store_config d) with
  | Error e -> failwith ("recovery failed: " ^ Error.to_string e)
  | Ok (store2, stats) ->
    check (stats.Store.sessions = 1) "session not recovered";
    (* The unacked record reached the OS before the "crash", so replay
       may legitimately have applied it; either way the retry below
       must leave exactly one copy. *)
    let retried, _ = store_ok store2 ~key:"k-add2" ~sid:"s0" (Store.Add "-1 0") in
    (match Store.info store2 "s0" with
    | Some (_, 2) -> ()
    | Some (_, n) ->
      failwith (Printf.sprintf "retry not exactly-once: %d clauses" n)
    | None -> failwith "session vanished after retry");
    let _, fields = store_ok store2 ~key:"k-solve" ~sid:"s0" (Store.Solve "") in
    (match Runtime.Journal.find_string fields "verdict" with
    | Some "sat" -> ()
    | v -> failwith ("recovered solve verdict wrong: "
                     ^ Option.value v ~default:"none"));
    Store.close store2;
    Printf.sprintf
      "unacked op refused, retry answered exactly once (%s); verdict sat"
      (if retried then "deduped from replay" else "executed fresh")

(* A crash mid-snapshot leaves a torn snapshot file. The op that
   triggered the snapshot stays acked (segments alone carry
   durability), and recovery must reject the torn snapshot and rebuild
   from the full log. *)
let wal_snapshot_crash_falls_back ~seed ~dir () =
  let d = subdir dir "wal-snap" in
  let cfg = { (wal_store_config d) with Store.snapshot_every = 2 } in
  (match Store.create cfg with
  | Error e -> failwith (Error.to_string e)
  | Ok (store, _) ->
    ignore (store_ok store ~sid:"s0" (Store.New 2));
    Fault.arm ~seed ~limit:1 [ Fault.Wal_snapshot_crash ];
    (* Second append crosses snapshot_every: the snapshot tears, the
       add itself must still be acked. *)
    ignore (store_ok store ~sid:"s0" (Store.Add "1 -2 0"));
    check (Fault.fired_count Fault.Wal_snapshot_crash = 1)
      "snapshot-crash fault never fired";
    Fault.disarm ();
    check (Store.snapshot_failures store = 1) "snapshot failure not counted");
  match Store.create (wal_store_config d) with
  | Error e -> failwith ("recovery failed: " ^ Error.to_string e)
  | Ok (store2, stats) ->
    check (stats.Store.corrupt_snapshots >= 1) "torn snapshot not detected";
    check (not stats.Store.from_snapshot) "torn snapshot was trusted";
    (match Store.info store2 "s0" with
    | Some (2, 1) -> ()
    | _ -> failwith "acked ops lost after snapshot crash");
    Store.close store2;
    "torn snapshot rejected; acked ops rebuilt from segments alone"

let oracle_sids = [| "a"; "b"; "c" |]

let random_session_ops rng n =
  List.init n (fun i ->
      let sid = oracle_sids.(i mod Array.length oracle_sids) in
      if i < Array.length oracle_sids then (sid, Store.New 3)
      else if Util.Rng.uniform rng 0.0 1.0 < 0.2 then
        let v = Util.Rng.int_in rng 1 3 in
        (sid, Store.Solve (string_of_int (if Util.Rng.bool rng then v else -v)))
      else
        let pick () =
          let v = Util.Rng.int_in rng 1 5 in
          if Util.Rng.bool rng then v else -v
        in
        (sid, Store.Add (Printf.sprintf "%d %d %d 0" (pick ()) (pick ()) (pick ()))))

(* The equivalence contract behind all of the above: a store recovered
   from its WAL must answer exactly like an uninterrupted oracle that
   executed the same ops, across a seeded random op sequence. *)
let wal_recovery_matches_oracle ~seed ~dir () =
  let d = subdir dir "wal-oracle" in
  let rng = Util.Rng.create seed in
  let sids = oracle_sids in
  let ops = random_session_ops rng 40 in
  let oracle =
    match Store.create Store.default_config with
    | Ok (t, _) -> t
    | Error e -> failwith (Error.to_string e)
  in
  (match Store.create (wal_store_config d) with
  | Error e -> failwith (Error.to_string e)
  | Ok (durable, _) ->
    List.iter
      (fun (sid, op) ->
        ignore (store_ok oracle ~sid op);
        ignore (store_ok durable ~sid op))
      ops
    (* SIGKILL: the durable store is abandoned, never closed. *));
  match Store.create (wal_store_config d) with
  | Error e -> failwith ("recovery failed: " ^ Error.to_string e)
  | Ok (recovered, stats) ->
    check (stats.Store.replayed > 0) "nothing was replayed";
    check
      (stats.Store.sessions = Store.session_count oracle)
      "recovered session count diverged";
    Array.iter
      (fun sid ->
        if Store.info oracle sid <> Store.info recovered sid then
          failwith (Printf.sprintf "session %s diverged after recovery" sid))
      sids;
    (* Same probes, same answers — including models and unsat cores. *)
    Array.iter
      (fun sid ->
        List.iter
          (fun assumptions ->
            let probe t = (Store.apply t ~sid (Store.Solve assumptions)).Store.reply in
            if probe oracle <> probe recovered then
              failwith
                (Printf.sprintf "solve %S on %s diverged after recovery"
                   assumptions sid))
          (* "99" probes the clean out-of-range error path too. *)
          [ ""; "1"; "-1 2"; "99" ])
      sids;
    Store.close recovered;
    Printf.sprintf
      "%d replayed ops; all %d sessions answer identically to the oracle"
      stats.Store.replayed stats.Store.sessions

(* The oracle above never crosses a snapshot (40 ops, snapshot_every
   256). Snapshots persist clauses but not solver-internal search
   state, so replies regenerated by replay on top of a snapshot may
   carry a different — equally valid — SAT model. The durable contract
   across snapshot recovery is therefore *verdict* stability, which
   this scenario checks with snapshot_every small enough that recovery
   restores a snapshot and replays beyond it. *)
let wal_snapshot_recovery_verdicts ~seed ~dir () =
  let d = subdir dir "wal-snap-oracle" in
  let cfg =
    { Store.default_config with Store.wal_dir = Some d; snapshot_every = 7 }
  in
  let rng = Util.Rng.create (seed + 1) in
  let ops = random_session_ops rng 40 in
  let oracle =
    match Store.create Store.default_config with
    | Ok (t, _) -> t
    | Error e -> failwith (Error.to_string e)
  in
  (match Store.create cfg with
  | Error e -> failwith (Error.to_string e)
  | Ok (durable, _) ->
    List.iter
      (fun (sid, op) ->
        ignore (store_ok oracle ~sid op);
        ignore (store_ok durable ~sid op))
      ops
    (* SIGKILL: the durable store is abandoned, never closed. *));
  match Store.create cfg with
  | Error e -> failwith ("recovery failed: " ^ Error.to_string e)
  | Ok (recovered, stats) ->
    check stats.Store.from_snapshot "recovery never restored a snapshot";
    check (stats.Store.replayed > 0) "recovery never replayed past the snapshot";
    check (stats.Store.restore_errors = 0) "snapshot entries failed to restore";
    Array.iter
      (fun sid ->
        if Store.info oracle sid <> Store.info recovered sid then
          failwith (Printf.sprintf "session %s diverged after recovery" sid))
      oracle_sids;
    let verdict t sid assumptions =
      match (Store.apply t ~sid (Store.Solve assumptions)).Store.reply with
      | Ok fields ->
        Option.value
          (Runtime.Journal.find_string fields "verdict")
          ~default:"?"
      | Error _ -> "error"
    in
    Array.iter
      (fun sid ->
        List.iter
          (fun assumptions ->
            let o = verdict oracle sid assumptions in
            let r = verdict recovered sid assumptions in
            if o <> r then
              failwith
                (Printf.sprintf
                   "verdict for %S on %s diverged after recovery: %s vs %s"
                   assumptions sid o r))
          [ ""; "1"; "-1 2"; "99" ])
      oracle_sids;
    Store.close recovered;
    Printf.sprintf
      "snapshot + %d replayed ops; verdicts match the oracle on all %d sessions"
      stats.Store.replayed stats.Store.sessions

(* --- driver --- *)

(* --- portfolio sharing scenarios --- *)

(* SIGKILL one portfolio worker mid-exchange (the parent fires
   [Portfolio_worker_kill] at a relay barrier and reaps the loss). The
   survivors must still reach the correct verdict, and the winning
   UNSAT proof must stay DRUP-checkable — imports from the dead worker
   that were already relayed are RUP-validated like any others. *)
let portfolio_worker_kill_verdict ~seed ~dir:_ () =
  let f = Gen.Pigeonhole.unsat 7 in
  Fault.arm ~seed ~limit:1 [ Fault.Portfolio_worker_kill ];
  let o = Portfolio.solve ~k:3 ~seed:2 ~proof:true f in
  Fault.disarm ();
  check (o.Portfolio.workers_killed >= 1) "no worker was killed mid-exchange";
  (match o.Portfolio.verdict with
  | Portfolio.Unsat (Some proof) -> (
    match Cdcl.Drup_check.check f proof with
    | Cdcl.Drup_check.Valid -> ()
    | Cdcl.Drup_check.Invalid { line; reason } ->
      failwith
        (Printf.sprintf "winning proof invalid at line %d: %s" line reason))
  | Portfolio.Unsat None -> failwith "winning proof was not captured"
  | Portfolio.Sat _ | Portfolio.Unknown ->
    failwith "verdict lost after worker kill");
  Printf.sprintf
    "worker SIGKILLed mid-exchange; survivors decided UNSAT (winner %s, %d \
     epochs) with a valid DRUP proof"
    o.Portfolio.winner_name o.Portfolio.epochs

(* Torn clause frames: every worker inherits the armed fault and tears
   its first export blob inside an intact pipe frame. The parent must
   drop and count each torn batch — never relay it — and the torn
   workers drop to solo solving; the importers' arenas stay sound, so
   the verdict and proof are unaffected. *)
let portfolio_torn_frame_dropped ~seed ~dir:_ () =
  let f = Gen.Pigeonhole.unsat 7 in
  Fault.arm ~seed ~limit:1 [ Fault.Share_torn_frame ];
  let o = Portfolio.solve ~k:3 ~seed:2 ~proof:true f in
  Fault.disarm ();
  check (o.Portfolio.torn_frames >= 1) "torn frame was never counted";
  (match o.Portfolio.verdict with
  | Portfolio.Unsat (Some proof) -> (
    match Cdcl.Drup_check.check f proof with
    | Cdcl.Drup_check.Valid -> ()
    | Cdcl.Drup_check.Invalid { line; reason } ->
      failwith
        (Printf.sprintf
           "proof corrupted after torn frame at line %d: %s" line reason))
  | Portfolio.Unsat None -> failwith "winning proof was not captured"
  | Portfolio.Sat _ | Portfolio.Unknown ->
    failwith "verdict lost after torn frame");
  (* Cross-check against a reference in-process solve. *)
  (match Cdcl.Solver.solve_formula f with
  | Cdcl.Solver.Unsat, _ -> ()
  | _ -> failwith "reference solve disagrees");
  Printf.sprintf
    "%d torn clause frame(s) dropped and counted; verdict matches the \
     reference solve with a valid proof"
    o.Portfolio.torn_frames

let all_scenarios =
  [
    ("torn-checkpoint-write", torn_write_falls_back);
    ("checkpoint-bit-flip", bit_flip_falls_back);
    ("corruption-without-backup", corruption_without_backup);
    ("duplicate-parameter", duplicate_parameter_rejected);
    ("poisoned-gradient", poisoned_gradient_recovers);
    ("inference-failure", inference_failure_degrades);
    ("non-finite-probability", non_finite_probability_degrades);
    ("instance-crash-retry", instance_crash_retried);
    ("campaign-journal-resume", campaign_resumes_from_journal);
    ("worker-kill-retry", worker_killed_retried);
    ("worker-rss-cap", worker_rss_reaped);
    ("worker-hang-watchdog", worker_hang_watchdog);
    ("breaker-trip-recover", breaker_trip_recovers);
    ("inprocess-abort-recover", inprocess_abort_recovers);
    ("parallel-journal-equivalence", parallel_journal_equivalence);
    ("wal-torn-append-truncate", wal_torn_append_truncates);
    ("wal-crash-before-fsync", wal_crash_before_fsync_exactly_once);
    ("wal-snapshot-crash-fallback", wal_snapshot_crash_falls_back);
    ("wal-recovery-oracle", wal_recovery_matches_oracle);
    ("wal-snapshot-recovery-oracle", wal_snapshot_recovery_verdicts);
    ("portfolio-worker-kill", portfolio_worker_kill_verdict);
    ("portfolio-torn-frame", portfolio_torn_frame_dropped);
  ]

let run_all ?dir ~seed () =
  let dir = match dir with Some d -> d | None -> fresh_dir () in
  let outcomes =
    List.map (fun (name, f) -> scenario name (f ~seed ~dir)) all_scenarios
  in
  Fault.disarm ();
  { seed; outcomes }

(* Fault-injection scenarios: arm Runtime.Fault (or corrupt files by
   hand), drive the real recovery code, assert the documented outcome. *)

module Fault = Runtime.Fault
module Error = Runtime.Error
module Mat = Tensor.Mat

type outcome = {
  scenario : string;
  passed : bool;
  detail : string;
}

type report = {
  seed : int;
  outcomes : outcome list;
}

let passed r = List.for_all (fun o -> o.passed) r.outcomes

let pp_report ppf r =
  Format.fprintf ppf "faultcheck: seed %d, %d scenarios, %d failed@." r.seed
    (List.length r.outcomes)
    (List.length (List.filter (fun o -> not o.passed) r.outcomes));
  List.iter
    (fun o ->
      Format.fprintf ppf "  [%s] %-32s %s@."
        (if o.passed then "OK" else "FAIL")
        o.scenario o.detail)
    r.outcomes

(* --- scaffolding --- *)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d = Filename.concat base (Printf.sprintf "nsfault-%d-%d" (Unix.getpid ()) i) in
    if Sys.file_exists d then go (i + 1)
    else begin
      Sys.mkdir d 0o755;
      d
    end
  in
  go 0

let scenario name f =
  let passed, detail =
    match f () with
    | detail -> (true, detail)
    | exception e -> (false, "raised " ^ Printexc.to_string e)
  in
  Fault.disarm ();
  { scenario = name; passed; detail }

let check cond msg = if not cond then failwith msg

let params_of_floats name values =
  [ Nn.Param.create name (Mat.row_vector (Array.of_list values)) ]

let param_values (ps : Nn.Param.t list) =
  List.concat_map
    (fun (p : Nn.Param.t) ->
      let v = p.Nn.Param.value in
      List.init (Mat.rows v * Mat.cols v) (fun k ->
          Mat.get v (k / Mat.cols v) (k mod Mat.cols v)))
    ps

(* --- checkpoint scenarios --- *)

let torn_write_falls_back ~seed ~dir () =
  let path = Filename.concat dir "torn.ckpt" in
  let good = params_of_floats "w" [ 1.0; 2.0; 3.0 ] in
  Nn.Checkpoint.save path good;
  (* Second save is torn mid-write: the intact first save was promoted
     to .bak, the primary holds half a file. *)
  Fault.arm ~seed ~limit:1 [ Fault.Torn_checkpoint_write ];
  let updated = params_of_floats "w" [ 9.0; 9.0; 9.0 ] in
  Nn.Checkpoint.save path updated;
  Fault.disarm ();
  check (Fault.fired_count Fault.Torn_checkpoint_write <= 1) "fault fired twice";
  let restored = params_of_floats "w" [ 0.0; 0.0; 0.0 ] in
  match Nn.Checkpoint.load_result path restored with
  | Ok Nn.Checkpoint.Backup ->
    check (param_values restored = [ 1.0; 2.0; 3.0 ]) "backup values wrong";
    "torn primary detected; .bak restored the last-good weights"
  | Ok Nn.Checkpoint.Primary -> failwith "torn primary loaded as intact"
  | Error e -> failwith ("no fallback: " ^ Error.to_string e)

let bit_flip_falls_back ~seed ~dir () =
  let path = Filename.concat dir "flip.ckpt" in
  let good = params_of_floats "w" [ 4.0; 5.0 ] in
  Nn.Checkpoint.save path good;
  Fault.arm ~seed ~limit:1 [ Fault.Checkpoint_bit_flip ];
  Nn.Checkpoint.save path (params_of_floats "w" [ 7.0; 7.0 ]);
  Fault.disarm ();
  let restored = params_of_floats "w" [ 0.0; 0.0 ] in
  match Nn.Checkpoint.load_result path restored with
  | Ok Nn.Checkpoint.Backup ->
    check (param_values restored = [ 4.0; 5.0 ]) "backup values wrong";
    "CRC caught the bit flip; .bak restored the last-good weights"
  | Ok Nn.Checkpoint.Primary -> failwith "bit-flipped checkpoint passed CRC"
  | Error e -> failwith ("no fallback: " ^ Error.to_string e)

let corruption_without_backup ~seed:_ ~dir () =
  let path = Filename.concat dir "orphan.ckpt" in
  let good = params_of_floats "w" [ 1.0 ] in
  Nn.Checkpoint.save path good;
  (* Flip one payload byte by hand; no .bak exists for this path. *)
  let text =
    match Runtime.Atomic_file.read path with Ok t -> t | Error _ -> failwith "read"
  in
  let b = Bytes.of_string text in
  Bytes.set b (Bytes.length b - 2) 'X';
  (match Runtime.Atomic_file.write_raw path (Bytes.to_string b) with
  | Ok () -> ()
  | Error e -> failwith (Error.to_string e));
  let restored = params_of_floats "w" [ 0.0 ] in
  match Nn.Checkpoint.load_result path restored with
  | Error (Error.Corrupt _) ->
    check (param_values restored = [ 0.0 ]) "params mutated despite corruption";
    "typed Corrupt error; parameters left untouched"
  | Error e -> failwith ("wrong error class: " ^ Error.to_string e)
  | Ok _ -> failwith "corrupt checkpoint accepted"

let duplicate_parameter_rejected ~seed:_ ~dir:_ () =
  let p = params_of_floats "w" [ 1.0; 2.0 ] in
  let doubled = Nn.Checkpoint.to_string p ^ Nn.Checkpoint.to_string p in
  let target = params_of_floats "w" [ 0.0; 0.0 ] in
  match Nn.Checkpoint.of_string_result doubled target with
  | Error (Error.Corrupt { detail; _ }) ->
    check
      (String.length detail >= 9 && String.sub detail 0 9 = "duplicate")
      ("wrong detail: " ^ detail);
    "duplicate parameter block raised a typed error"
  | Error e -> failwith ("wrong error class: " ^ Error.to_string e)
  | Ok () -> failwith "duplicate parameter block accepted"

(* --- training scenario --- *)

let poisoned_gradient_recovers ~seed ~dir:_ () =
  let rng = Util.Rng.create seed in
  let mlp = Nn.Layer.Mlp.create rng ~dims:[ 2; 4; 1 ] ~name:"fault" in
  let spec =
    {
      Nn.Train.params = Nn.Layer.Mlp.params mlp;
      forward = (fun tape m -> Nn.Layer.Mlp.forward tape mlp (Nn.Ad.const tape m));
    }
  in
  let examples =
    Array.init 16 (fun _ ->
        let v = Array.init 2 (fun _ -> Util.Rng.uniform rng (-1.0) 1.0) in
        (Mat.row_vector v, v.(0) +. v.(1) > 0.0))
  in
  let lr = 0.05 in
  Fault.arm ~seed ~limit:2 [ Fault.Poisoned_gradient ];
  let history = Nn.Train.fit ~epochs:4 ~lr ~seed spec examples in
  Fault.disarm ();
  check (Fault.fired_count Fault.Poisoned_gradient = 0) "fault state leaked";
  check (history.Nn.Train.skipped_steps >= 1) "no step was skipped";
  check (history.Nn.Train.lr_backoffs >= 1) "learning rate never backed off";
  check (history.Nn.Train.final_lr < lr) "learning rate did not shrink";
  Array.iter
    (fun l -> check (Float.is_finite l) "non-finite epoch loss leaked")
    history.Nn.Train.epoch_losses;
  List.iter
    (fun (p : Nn.Param.t) ->
      for i = 0 to Mat.rows p.Nn.Param.value - 1 do
        for j = 0 to Mat.cols p.Nn.Param.value - 1 do
          check
            (Float.is_finite (Mat.get p.Nn.Param.value i j))
            "NaN leaked into the weights"
        done
      done)
    spec.Nn.Train.params;
  Printf.sprintf "skipped %d step(s), %d backoff(s), final lr %.2e, weights finite"
    history.Nn.Train.skipped_steps history.Nn.Train.lr_backoffs
    history.Nn.Train.final_lr

(* --- inference scenarios --- *)

let small_formula =
  Cnf.Formula.of_dimacs_lists ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ]

let inference_failure_degrades ~seed ~dir:_ () =
  let model = Core.Model.create Core.Model.small_config in
  Fault.arm ~seed ~limit:1 [ Fault.Inference_failure ];
  let s = Core.Selector.select_policy model small_formula in
  (match s.Core.Selector.degraded with
  | Some (Core.Selector.Model_failure _) -> ()
  | Some (Core.Selector.Non_finite_probability _) | None ->
    failwith "degradation not recorded");
  check (s.Core.Selector.policy = Cdcl.Policy.Default) "did not fall back to default";
  (* The fault is exhausted: the next selection works normally. *)
  let s2 = Core.Selector.select_policy model small_formula in
  Fault.disarm ();
  check (s2.Core.Selector.degraded = None) "degradation persisted after recovery";
  check (Float.is_finite s2.Core.Selector.probability) "recovered probability not finite";
  "failed inference fell back to the default policy and recovered on the next call"

let non_finite_probability_degrades ~seed:_ ~dir:_ () =
  let model = Core.Model.create Core.Model.small_config in
  (* A NaN in the output layer is what loading a silently corrupted
     checkpoint used to produce; it propagates straight to the
     predicted probability. (Hidden-layer NaNs can be masked by relu,
     whose [x > 0] test is false for NaN.) *)
  (match List.rev (Core.Model.params model) with
  | [] -> failwith "model has no parameters"
  | p :: _ -> Mat.set p.Nn.Param.value 0 0 Float.nan);
  let s = Core.Selector.select_policy model small_formula in
  (match s.Core.Selector.degraded with
  | Some (Core.Selector.Non_finite_probability _) -> ()
  | Some (Core.Selector.Model_failure _) | None ->
    failwith "non-finite output not detected");
  check (s.Core.Selector.policy = Cdcl.Policy.Default) "did not fall back to default";
  "NaN probability detected; default policy substituted"

(* --- campaign scenarios --- *)

let tiny_instances ~seed n =
  List.init n (fun i ->
      let rng = Util.Rng.create ((seed * 613) + i) in
      let num_vars = 6 + i in
      {
        Gen.Dataset.name = Printf.sprintf "fault-%02d" i;
        family = "ksat";
        year = 2022;
        formula =
          Gen.Ksat.generate rng ~num_vars ~num_clauses:(3 * num_vars) ~k:3;
      })

let instance_crash_retried ~seed ~dir:_ () =
  let model = Core.Model.create Core.Model.small_config in
  let simtime = Experiments.Simtime.make ~budget:50_000 in
  let instances = tiny_instances ~seed 3 in
  Fault.arm ~seed ~limit:1 [ Fault.Instance_crash ];
  let result = Experiments.Adaptive_eval.run model simtime instances in
  let fired = Fault.fired_count Fault.Instance_crash in
  Fault.disarm ();
  check (fired = 1) "crash fault never fired";
  check (result.Experiments.Adaptive_eval.failures = []) "retry did not absorb the crash";
  check
    (List.length result.Experiments.Adaptive_eval.entries = 3)
    "an instance went missing";
  "one injected crash, absorbed by the per-instance retry; all entries present"

let campaign_resumes_from_journal ~seed ~dir () =
  let model = Core.Model.create Core.Model.small_config in
  let simtime = Experiments.Simtime.make ~budget:50_000 in
  let instances = tiny_instances ~seed 4 in
  let journal = Filename.concat dir "campaign.jsonl" in
  (* Reference: the uninterrupted campaign. *)
  let full = Experiments.Adaptive_eval.run model simtime instances in
  (* "Kill" the campaign after two instances by only running a prefix,
     then tear the journal's final line as a SIGKILL would. *)
  let prefix = [ List.nth instances 0; List.nth instances 1 ] in
  let interrupted =
    Experiments.Adaptive_eval.run ~journal model simtime prefix
  in
  check (List.length interrupted.Experiments.Adaptive_eval.entries = 2) "prefix run broken";
  (match Runtime.Atomic_file.read journal with
  | Ok text ->
    let torn = String.sub text 0 (String.length text - 7) ^ "{\"name\":\"half" in
    (match Runtime.Atomic_file.write_raw journal torn with
    | Ok () -> ()
    | Error e -> failwith (Error.to_string e))
  | Error e -> failwith (Error.to_string e));
  let resumed = Experiments.Adaptive_eval.run ~journal model simtime instances in
  check
    (resumed.Experiments.Adaptive_eval.resumed >= 1)
    "nothing was resumed from the journal";
  check
    (List.length resumed.Experiments.Adaptive_eval.entries = 4)
    "resumed campaign lost instances";
  let names r =
    List.map (fun (e : Experiments.Adaptive_eval.entry) -> e.name)
      r.Experiments.Adaptive_eval.entries
  in
  check (names resumed = names full) "entry order diverged from the full run";
  Printf.sprintf "resumed %d/4 instances from a torn journal; campaign completed"
    resumed.Experiments.Adaptive_eval.resumed

(* --- driver --- *)

let all_scenarios =
  [
    ("torn-checkpoint-write", torn_write_falls_back);
    ("checkpoint-bit-flip", bit_flip_falls_back);
    ("corruption-without-backup", corruption_without_backup);
    ("duplicate-parameter", duplicate_parameter_rejected);
    ("poisoned-gradient", poisoned_gradient_recovers);
    ("inference-failure", inference_failure_degrades);
    ("non-finite-probability", non_finite_probability_degrades);
    ("instance-crash-retry", instance_crash_retried);
    ("campaign-journal-resume", campaign_resumes_from_journal);
  ]

let run_all ?dir ~seed () =
  let dir = match dir with Some d -> d | None -> fresh_dir () in
  let outcomes =
    List.map (fun (name, f) -> scenario name (f ~seed ~dir)) all_scenarios
  in
  Fault.disarm ();
  { seed; outcomes }

(* Differential + metamorphic fuzzing of Cdcl.Solver against the DPLL
   oracle, with shrinking to minimal DIMACS reproducers. *)

type solve_fn =
  Cdcl.Config.t -> Cnf.Formula.t -> Cdcl.Solver.result * Cdcl.Drup.t option

let default_solve config f =
  let solver = Cdcl.Solver.create ~config f in
  let log = Cdcl.Drup.create () in
  Cdcl.Drup.attach log solver;
  (Cdcl.Solver.solve solver, Some log)

(* Unsound on purpose: losing a clause is what a broken watch-list
   update looks like from the outside. *)
let break_lost_clause config f =
  let m = Cnf.Formula.num_clauses f in
  if m = 0 then default_solve config f
  else begin
    let kept = Array.init (m - 1) (Cnf.Formula.clause f) in
    default_solve config (Cnf.Formula.create ~num_vars:(Cnf.Formula.num_vars f) kept)
  end

let all_policies =
  [
    Cdcl.Policy.Default;
    Cdcl.Policy.frequency_default;
    Cdcl.Policy.Glue_only;
    Cdcl.Policy.Size_only;
    Cdcl.Policy.Activity;
    Cdcl.Policy.Random 1;
  ]

type discrepancy = {
  case_index : int;
  family : string;
  detail : string;
  dimacs : string;
  replay : string;
}

type report = {
  seed : int;
  cases_run : int;
  checks_run : int;
  discrepancies : discrepancy list;
}

(* --- case generation --- *)

let case_rng ~seed i = Util.Rng.create ((seed * 1_000_003) + i)

let generate_case ~seed i =
  let rng = case_rng ~seed i in
  match i mod 5 with
  | 0 ->
    let n = Util.Rng.int_in rng 5 12 in
    let m = int_of_float (float_of_int n *. Util.Rng.uniform rng 2.0 5.5) in
    ("ksat", Gen.Ksat.generate rng ~num_vars:n ~num_clauses:(max 1 m) ~k:(min 3 n))
  | 1 ->
    let pigeons = Util.Rng.int_in rng 3 5 in
    let holes = if Util.Rng.bool rng then pigeons - 1 else pigeons in
    ("pigeonhole", Gen.Pigeonhole.generate ~pigeons ~holes)
  | 2 ->
    let vertices = Util.Rng.int_in rng 4 7 in
    let colors = Util.Rng.int_in rng 2 3 in
    let edge_prob = Util.Rng.uniform rng 0.25 0.6 in
    ("coloring", Gen.Coloring.generate rng ~vertices ~edge_prob ~colors)
  | 3 ->
    let n = Util.Rng.int_in rng 3 8 in
    if Util.Rng.bool rng then
      ("parity", Gen.Parity.chain rng ~num_vars:n ~target:(Util.Rng.bool rng))
    else ("parity", Gen.Parity.contradiction rng ~num_vars:n)
  | _ ->
    let width = Util.Rng.int_in rng 1 2 in
    let faulty = Util.Rng.bool rng in
    ("circuit", Gen.Circuits.adder_miter ~faulty width)

(* --- per-formula checking --- *)

type opts = {
  solve : solve_fn;
  policies : Cdcl.Policy.t list;
  metamorphic : bool;
  check_proofs : bool;
  oracle_budget : int;
}

let verdict_name = function
  | Cdcl.Solver.Sat _ -> "SAT"
  | Cdcl.Solver.Unsat -> "UNSAT"
  | Cdcl.Solver.Unknown -> "UNKNOWN"

let same_verdict a b =
  match (a, b) with
  | Cdcl.Solver.Sat _, Cdcl.Solver.Sat _ -> true
  | Cdcl.Solver.Unsat, Cdcl.Solver.Unsat -> true
  | Cdcl.Solver.Unknown, Cdcl.Solver.Unknown -> true
  | _ -> false

(* Runs every check on one formula. Returns the number of assertions
   evaluated and the first failure, if any. [meta_seed] fixes the
   randomness of the metamorphic transforms. *)
let check_formula opts ~meta_seed f =
  let checks = ref 0 in
  let failure = ref None in
  let fail msg = if !failure = None then failure := Some msg in
  (* [msg] is a thunk so passing assertions never build the string. *)
  let assert_ cond msg =
    incr checks;
    if not cond then fail (msg ())
  in
  let oracle = Oracle.solve ~max_nodes:opts.oracle_budget f in
  let baseline = ref None in
  List.iter
    (fun policy ->
      if !failure = None then begin
        let config = Cdcl.Config.with_policy policy Cdcl.Config.default in
        let result, log = opts.solve config f in
        let pname = Cdcl.Policy.name policy in
        (match result with
        | Cdcl.Solver.Unknown ->
          incr checks;
          fail
            (Printf.sprintf "policy %s: Unknown verdict with no budget configured"
               pname)
        | Cdcl.Solver.Sat model ->
          assert_
            (Cdcl.Solver.check_model f model)
            (fun () ->
              Printf.sprintf "policy %s: SAT model does not satisfy the formula"
                pname)
        | Cdcl.Solver.Unsat ->
          if opts.check_proofs then begin
            incr checks;
            match log with
            | None ->
              fail (Printf.sprintf "policy %s: UNSAT without a proof log" pname)
            | Some log -> (
              Cdcl.Drup.conclude_unsat log;
              match Cdcl.Drup_check.check_solver_proof f log with
              | Cdcl.Drup_check.Valid -> ()
              | Cdcl.Drup_check.Invalid { line; reason } ->
                fail
                  (Printf.sprintf "policy %s: DRUP proof invalid at line %d: %s"
                     pname line reason))
          end);
        (match oracle with
        | None -> ()
        | Some o ->
          let agrees =
            match (o, result) with
            | Oracle.Sat _, Cdcl.Solver.Sat _ -> true
            | Oracle.Unsat, Cdcl.Solver.Unsat -> true
            | _ -> false
          in
          assert_ agrees (fun () ->
              Printf.sprintf "policy %s: verdict %s but oracle says %s" pname
                (verdict_name result) (Oracle.verdict_name o)));
        match !baseline with
        | None -> baseline := Some (pname, result)
        | Some (bname, bresult) ->
          assert_
            (same_verdict bresult result)
            (fun () ->
              Printf.sprintf "policy %s: verdict %s disagrees with policy %s: %s"
                pname (verdict_name result) bname (verdict_name bresult))
      end)
    opts.policies;
  (match (!failure, !baseline) with
  | None, Some (_, base_result) when opts.metamorphic ->
    let rng = Util.Rng.create meta_seed in
    List.iter
      (fun transform ->
        if !failure = None then begin
          let g = Metamorphic.apply rng transform f in
          let result, _ = opts.solve Cdcl.Config.default g in
          assert_
            (same_verdict base_result result)
            (fun () ->
              Printf.sprintf "metamorphic %s: verdict %s but original was %s"
                (Metamorphic.name transform) (verdict_name result)
                (verdict_name base_result))
        end)
      Metamorphic.all
  | _ -> ());
  (!checks, !failure)

(* --- shrinking --- *)

let clauses_of f = Array.init (Cnf.Formula.num_clauses f) (Cnf.Formula.clause f)

let shrink still_fails f =
  let num_vars = Cnf.Formula.num_vars f in
  let budget = ref 1000 in
  let fails clauses =
    if !budget <= 0 then false
    else begin
      decr budget;
      match still_fails (Cnf.Formula.create ~num_vars clauses) with
      | ok -> ok
      | exception _ -> false
    end
  in
  let current = ref (clauses_of f) in
  let remove_range arr start len =
    let n = Array.length arr in
    Array.append (Array.sub arr 0 start) (Array.sub arr (start + len) (n - start - len))
  in
  (* Clause removal: chunks of halving size, then singletons. *)
  let chunk = ref (max 1 (Array.length !current / 2)) in
  while !chunk >= 1 do
    let i = ref 0 in
    while !i + !chunk <= Array.length !current do
      let candidate = remove_range !current !i !chunk in
      if fails candidate then current := candidate else i := !i + !chunk
    done;
    chunk := if !chunk = 1 then 0 else !chunk / 2
  done;
  (* Literal removal within the surviving clauses (never emptying one). *)
  let ci = ref 0 in
  while !ci < Array.length !current do
    let li = ref 0 in
    while !li < Array.length !current.(!ci) && Array.length !current.(!ci) > 1 do
      let candidate = Array.copy !current in
      candidate.(!ci) <- remove_range !current.(!ci) !li 1;
      if fails candidate then current := candidate else incr li
    done;
    incr ci
  done;
  Cnf.Formula.create ~num_vars !current

(* --- the driver --- *)

let replay_command ~seed ~case_index =
  Printf.sprintf "dune exec bin/fuzz.exe -- --seed %d --case %d" seed case_index

let run ?(solve = default_solve) ?(policies = all_policies) ?(metamorphic = true)
    ?(check_proofs = true) ?(oracle_budget = 500_000) ?only_case
    ?(on_case = fun _ _ -> ()) ~seed ~cases () =
  let opts = { solve; policies; metamorphic; check_proofs; oracle_budget } in
  let total_checks = ref 0 in
  let discrepancies = ref [] in
  let cases_run = ref 0 in
  let indices =
    match only_case with
    | Some i -> [ i ]
    | None -> List.init (max 0 cases) (fun i -> i)
  in
  List.iter
    (fun i ->
      let family, f = generate_case ~seed i in
      on_case i family;
      incr cases_run;
      let meta_seed = (seed * 7_368_787) + i in
      let checks, failure = check_formula opts ~meta_seed f in
      total_checks := !total_checks + checks;
      match failure with
      | None -> ()
      | Some detail ->
        let still_fails g = snd (check_formula opts ~meta_seed g) <> None in
        let minimal = shrink still_fails f in
        discrepancies :=
          {
            case_index = i;
            family;
            detail;
            dimacs = Cnf.Dimacs.to_string minimal;
            replay = replay_command ~seed ~case_index:i;
          }
          :: !discrepancies)
    indices;
  {
    seed;
    cases_run = !cases_run;
    checks_run = !total_checks;
    discrepancies = List.rev !discrepancies;
  }

let pp_report ppf r =
  Format.fprintf ppf "fuzz: seed %d, %d cases, %d checks, %d discrepancies@."
    r.seed r.cases_run r.checks_run
    (List.length r.discrepancies);
  List.iter
    (fun d ->
      Format.fprintf ppf
        "@.FAIL case %d (%s): %s@.replay: %s@.shrunk reproducer:@.%s@."
        d.case_index d.family d.detail d.replay d.dimacs)
    r.discrepancies

(* --- arena vs. reference differential mode --------------------------- *)

type ref_diff_failure = {
  rdf_case : int;
  rdf_family : string;
  rdf_detail : string;
  rdf_dimacs : string;  (* shrunk reproducer, every failure kind *)
  rdf_replay : string;
}

type ref_diff_report = {
  rd_seed : int;
  rd_cases : int;
  rd_compactions : int;  (* arena GCs across all runs *)
  rd_rewrites : int;  (* inprocessing rewrites across all runs *)
  rd_failures : ref_diff_failure list;
}

(* Aggressive schedule: frequent reduces, deep deletion, no protected
   tier — maximises deleted-clause garbage so the arena compacts often
   even on fuzz-sized instances. Policy rotates with the case index. *)
let ref_diff_config i =
  let policy = List.nth all_policies (i mod List.length all_policies) in
  {
    Cdcl.Config.default with
    Cdcl.Config.policy;
    reduce_first = 20;
    reduce_inc = 5;
    reduce_fraction = 0.8;
    tier1_glue = 0;
  }

(* The inprocessing arm: a pass after every restart, restarts every
   few conflicts, eager promotion — so vivification, subsumption, tier
   movement, and mid-pass compaction all trigger on fuzz-sized
   instances. Only the verdict, model validity, and DRUP proof are
   compared against the reference: inprocessing legitimately changes
   the search trajectory, so bit-for-bit stats equality is gated to
   the inprocessing-off arm. *)
let inprocess_diff_config i =
  {
    (ref_diff_config i) with
    Cdcl.Config.restart_mode = Cdcl.Config.Luby 8;
    inprocess = true;
    inprocess_interval = 1;
    tier2_glue = 4;
    promote_uses = 1;
    vivify_budget = 10_000;
    subsume_budget = 50_000;
  }

let stats_equal (a : Cdcl.Solver_stats.t) (b : Cdcl.Solver_stats.t) =
  a.Cdcl.Solver_stats.decisions = b.Cdcl.Solver_stats.decisions
  && a.Cdcl.Solver_stats.conflicts = b.Cdcl.Solver_stats.conflicts
  && a.Cdcl.Solver_stats.propagations = b.Cdcl.Solver_stats.propagations
  && a.Cdcl.Solver_stats.restarts = b.Cdcl.Solver_stats.restarts
  && a.Cdcl.Solver_stats.reduces = b.Cdcl.Solver_stats.reduces
  && a.Cdcl.Solver_stats.learned_total = b.Cdcl.Solver_stats.learned_total
  && a.Cdcl.Solver_stats.deleted_total = b.Cdcl.Solver_stats.deleted_total
  && a.Cdcl.Solver_stats.minimized_literals = b.Cdcl.Solver_stats.minimized_literals
  && a.Cdcl.Solver_stats.max_decision_level = b.Cdcl.Solver_stats.max_decision_level

(* One case, both arms. Returns (first failure, compactions,
   inprocessing rewrites). Deterministic in (config, ipconfig, f), so
   the shrinker can re-run it on candidate sub-formulas. *)
let run_one_ref_diff config ipconfig f =
  let failure = ref None in
  let fail d = if !failure = None then failure := Some d in
  let compactions = ref 0 in
  let rewrites = ref 0 in
  (* Arm 1: inprocessing off — bit-for-bit against the reference. *)
  let arena = Cdcl.Solver.create ~config f in
  let arena_events = ref [] in
  let drup = Cdcl.Drup.create () in
  Cdcl.Solver.set_trace arena (fun ev ->
      arena_events := ev :: !arena_events;
      Cdcl.Drup.event drup ev);
  let rs = Refsolver.create ~config f in
  let ref_events = ref [] in
  Refsolver.set_trace rs (fun ev -> ref_events := ev :: !ref_events);
  let ra = Cdcl.Solver.solve arena in
  let rr = Refsolver.solve rs in
  compactions := !compactions + Cdcl.Solver.arena_gc_count arena;
  (match (ra, rr) with
  | Cdcl.Solver.Sat ma, Cdcl.Solver.Sat mr ->
    if not (Cdcl.Solver.check_model f ma) then fail "arena model invalid";
    if ma <> mr then fail "models differ"
  | Cdcl.Solver.Unsat, Cdcl.Solver.Unsat ->
    Cdcl.Drup.conclude_unsat drup;
    (match Cdcl.Drup_check.check_solver_proof f drup with
    | Cdcl.Drup_check.Valid -> ()
    | Cdcl.Drup_check.Invalid { line; reason } ->
      fail (Printf.sprintf "arena DRUP proof invalid at line %d: %s" line reason))
  | Cdcl.Solver.Unknown, Cdcl.Solver.Unknown -> ()
  | _ -> fail "verdicts diverge");
  if not (stats_equal (Cdcl.Solver.stats arena) (Refsolver.stats rs)) then
    fail "statistics diverge";
  if List.rev !arena_events <> List.rev !ref_events then fail "traces diverge";
  (* Arm 2: inprocessing on — verdict, model validity, DRUP proof. *)
  if !failure = None then begin
    let ip = Cdcl.Solver.create ~config:ipconfig f in
    let ip_drup = Cdcl.Drup.create () in
    Cdcl.Drup.attach ip_drup ip;
    let ri = Cdcl.Solver.solve ip in
    compactions := !compactions + Cdcl.Solver.arena_gc_count ip;
    let st = Cdcl.Solver.stats ip in
    rewrites :=
      !rewrites + st.Cdcl.Solver_stats.vivified
      + st.Cdcl.Solver_stats.vivify_deleted + st.Cdcl.Solver_stats.subsumed
      + st.Cdcl.Solver_stats.strengthened;
    match (ri, rr) with
    | Cdcl.Solver.Sat mi, Cdcl.Solver.Sat _ ->
      if not (Cdcl.Solver.check_model f mi) then
        fail "inprocessing model invalid"
    | Cdcl.Solver.Unsat, Cdcl.Solver.Unsat -> (
      Cdcl.Drup.conclude_unsat ip_drup;
      match Cdcl.Drup_check.check_solver_proof f ip_drup with
      | Cdcl.Drup_check.Valid -> ()
      | Cdcl.Drup_check.Invalid { line; reason } ->
        fail
          (Printf.sprintf "inprocessing DRUP proof invalid at line %d: %s" line
             reason))
    | _ ->
      fail
        (Printf.sprintf "inprocessing verdict %s but reference says %s"
           (verdict_name ri) (verdict_name rr))
  end;
  (!failure, !compactions, !rewrites)

let run_ref_diff ?(on_case = fun _ _ -> ()) ~seed ~cases () =
  let failures = ref [] in
  let compactions = ref 0 in
  let rewrites = ref 0 in
  for i = 0 to cases - 1 do
    let family, f = generate_case ~seed i in
    on_case i family;
    let config = ref_diff_config i in
    let ipconfig = inprocess_diff_config i in
    let failure, gcs, rws = run_one_ref_diff config ipconfig f in
    compactions := !compactions + gcs;
    rewrites := !rewrites + rws;
    match failure with
    | None -> ()
    | Some detail ->
      (* Shrink on every failure kind — statistics and trace
         divergences included, not just verdict mismatches. *)
      let still_fails g =
        let failure, _, _ = run_one_ref_diff config ipconfig g in
        failure <> None
      in
      let minimal = shrink still_fails f in
      failures :=
        {
          rdf_case = i;
          rdf_family = family;
          rdf_detail = detail;
          rdf_dimacs = Cnf.Dimacs.to_string minimal;
          rdf_replay = replay_command ~seed ~case_index:i ^ " --diff-ref";
        }
        :: !failures
  done;
  {
    rd_seed = seed;
    rd_cases = cases;
    rd_compactions = !compactions;
    rd_rewrites = !rewrites;
    rd_failures = List.rev !failures;
  }

(* --- incremental API differential mode -------------------------------- *)

type incr_failure = {
  if_case : int;
  if_step : int;
  if_detail : string;
  if_replay : string;
}

type incr_report = {
  ir_seed : int;
  ir_sequences : int;
  ir_steps : int; (* total API calls issued *)
  ir_solves : int; (* solve / solve_with_assumptions steps checked *)
  ir_checks : int;
  ir_failures : incr_failure list;
}

(* One randomized call sequence against a fresh-solver-per-step oracle.

   The incremental solver receives interleaved add_clause / new_var /
   solve / solve_with_assumptions calls; at every solve step a brand-new
   solver is built from the accumulated formula and must produce the
   same verdict constructor. Models can legitimately differ (the
   incremental solver carries learned clauses and saved phases across
   steps), so SAT answers are checked for validity against the
   accumulated formula instead of equality. Plain solves additionally
   cross-check the Refsolver reference implementation. *)
let run_one_incremental ~seed i ~steps_done ~solves_done ~checks_done =
  let rng = Util.Rng.create ((seed * 2_000_033) + i + 1) in
  let config =
    Cdcl.Config.with_policy
      (List.nth all_policies (i mod List.length all_policies))
      Cdcl.Config.default
  in
  let num_vars = ref (Util.Rng.int_in rng 4 8) in
  let clauses = ref [] in
  (* accumulated, reversed *)
  let inc = Cdcl.Solver.create ~config (Cnf.Formula.create ~num_vars:!num_vars [||]) in
  let failure = ref None in
  let fail step msg = if !failure = None then failure := Some (step, msg) in
  let check step cond msg =
    incr checks_done;
    if not cond then fail step (msg ())
  in
  let accumulated () =
    Cnf.Formula.create ~num_vars:!num_vars (Array.of_list (List.rev !clauses))
  in
  let random_clause () =
    let len = Util.Rng.int_in rng 1 (min 4 !num_vars) in
    let vars = Util.Rng.sample_distinct rng len !num_vars in
    Array.map (fun v -> Cnf.Lit.make (v + 1) (Util.Rng.bool rng)) vars
  in
  let random_assumptions () =
    let k = Util.Rng.int_in rng 0 (min 3 !num_vars) in
    Array.to_list
      (Array.map
         (fun v -> Cnf.Lit.make (v + 1) (Util.Rng.bool rng))
         (Util.Rng.sample_distinct rng k !num_vars))
  in
  let model_ok f m = Cdcl.Solver.check_model f m in
  let assumptions_hold m assumptions =
    List.for_all
      (fun l ->
        let v = Cnf.Lit.var l in
        v < Array.length m && m.(v) = Cnf.Lit.is_pos l)
      assumptions
  in
  let check_solve step assumptions =
    incr solves_done;
    let f = accumulated () in
    let fresh = Cdcl.Solver.create ~config f in
    match assumptions with
    | None ->
      let ri = Cdcl.Solver.solve inc in
      let ro = Cdcl.Solver.solve fresh in
      check step (same_verdict ri ro) (fun () ->
          Printf.sprintf "plain solve: incremental %s vs fresh %s"
            (verdict_name ri) (verdict_name ro));
      (* Cross-check the record-based reference implementation too. *)
      let rs = Refsolver.create ~config f in
      let rr = Refsolver.solve rs in
      check step (same_verdict ri rr) (fun () ->
          Printf.sprintf "plain solve: incremental %s vs refsolver %s"
            (verdict_name ri) (verdict_name rr));
      check step
        (Cdcl.Solver.unsat_core inc = None)
        (fun () -> "plain solve left a stale unsat core");
      (match ri with
      | Cdcl.Solver.Sat m ->
        check step (model_ok f m) (fun () ->
            "plain solve: incremental SAT model invalid")
      | _ -> ());
      check step
        (match (Cdcl.Solver.state inc, ri) with
        | `Sat, Cdcl.Solver.Sat _ | `Unsat, Cdcl.Solver.Unsat
        | `Unknown, Cdcl.Solver.Unknown ->
          true
        | _ -> false)
        (fun () -> "state does not mirror the verdict")
    | Some assumptions ->
      let ri = Cdcl.Solver.solve_with_assumptions inc assumptions in
      let ro = Cdcl.Solver.solve_with_assumptions fresh assumptions in
      check step (same_verdict ri ro) (fun () ->
          Printf.sprintf "assumption solve: incremental %s vs fresh %s"
            (verdict_name ri) (verdict_name ro));
      (match ri with
      | Cdcl.Solver.Sat m ->
        check step
          (model_ok f m && assumptions_hold m assumptions)
          (fun () -> "assumption solve: SAT model invalid or violates assumptions")
      | Cdcl.Solver.Unsat -> (
        match Cdcl.Solver.unsat_core inc with
        | None -> fail step "assumption UNSAT without a core"
        | Some core ->
          check step
            (List.for_all
               (fun l -> List.exists (Cnf.Lit.equal l) assumptions)
               core)
            (fun () -> "unsat core is not a subset of the assumptions");
          (* The core alone must still be unsatisfiable with the formula. *)
          let again = Cdcl.Solver.create ~config f in
          check step
            (Cdcl.Solver.solve_with_assumptions again core = Cdcl.Solver.Unsat)
            (fun () -> "unsat core does not reproduce UNSAT"))
      | Cdcl.Solver.Unknown -> ())
  in
  let steps = Util.Rng.int_in rng 10 24 in
  let step = ref 0 in
  while !step < steps && !failure = None do
    incr steps_done;
    let r = Util.Rng.int rng 100 in
    (if r < 50 then begin
       let c = random_clause () in
       clauses := c :: !clauses;
       Cdcl.Solver.add_clause inc (Array.to_list c)
     end
     else if r < 65 then begin
       let v = Cdcl.Solver.new_var inc in
       incr num_vars;
       check !step (v = !num_vars) (fun () ->
           Printf.sprintf "new_var returned %d, expected %d" v !num_vars)
     end
     else if r < 90 then check_solve !step (Some (random_assumptions ()))
     else check_solve !step None);
    incr step
  done;
  (* Every sequence ends with a checked plain solve. *)
  if !failure = None then begin
    incr steps_done;
    check_solve !step None
  end;
  !failure

let run_incremental_diff ?(on_case = fun _ -> ()) ~seed ~sequences () =
  let steps_done = ref 0 in
  let solves_done = ref 0 in
  let checks_done = ref 0 in
  let failures = ref [] in
  for i = 0 to sequences - 1 do
    on_case i;
    match run_one_incremental ~seed i ~steps_done ~solves_done ~checks_done with
    | None -> ()
    | Some (step, detail) ->
      failures :=
        {
          if_case = i;
          if_step = step;
          if_detail = detail;
          if_replay = replay_command ~seed ~case_index:i ^ " --diff-ref";
        }
        :: !failures
  done;
  {
    ir_seed = seed;
    ir_sequences = sequences;
    ir_steps = !steps_done;
    ir_solves = !solves_done;
    ir_checks = !checks_done;
    ir_failures = List.rev !failures;
  }

let pp_incr_report ppf r =
  Format.fprintf ppf
    "incremental-diff: seed %d, %d sequences, %d steps, %d solves, %d checks, \
     %d failures@."
    r.ir_seed r.ir_sequences r.ir_steps r.ir_solves r.ir_checks
    (List.length r.ir_failures);
  List.iter
    (fun d ->
      Format.fprintf ppf "@.FAIL sequence %d step %d: %s@.replay: %s@."
        d.if_case d.if_step d.if_detail d.if_replay)
    r.ir_failures

let pp_ref_diff_report ppf r =
  Format.fprintf ppf
    "ref-diff: seed %d, %d cases, %d arena compactions, %d inprocessing \
     rewrites, %d failures@."
    r.rd_seed r.rd_cases r.rd_compactions r.rd_rewrites
    (List.length r.rd_failures);
  List.iter
    (fun d ->
      Format.fprintf ppf
        "@.FAIL case %d (%s): %s@.replay: %s@.shrunk reproducer:@.%s@."
        d.rdf_case d.rdf_family d.rdf_detail d.rdf_replay d.rdf_dimacs)
    r.rd_failures

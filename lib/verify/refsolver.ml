(* Record-based reference CDCL solver for differential testing of the
   arena clause database.

   This solver implements exactly the same search semantics as
   [Cdcl.Solver] — blocking-literal watchers (binary clauses inlined in
   the watcher, never literal-swapped), first-UIP learning that skips
   the resolved variable by name, activity values quantised through the
   arena's integer encoding, the same reduce ranking and schedule — but
   stores clauses as ordinary OCaml records with boxed literal arrays
   and relies on the runtime GC instead of arena compaction.

   Because only the memory layout differs, a correct arena solver must
   produce bit-for-bit identical verdicts, statistics, and
   learned/deleted clause traces. Any divergence localises a bug in the
   arena, the watcher encoding, the packed ranking key, or the
   compaction pass. Kept deliberately slow and boxed: clarity over
   speed. *)

module Lit = Cnf.Lit
module Vec = Util.Vec
module Config = Cdcl.Config
module Policy = Cdcl.Policy
module Solver_stats = Cdcl.Solver_stats

type result = Cdcl.Solver.result =
  | Sat of bool array
  | Unsat
  | Unknown

type clause = {
  cid : int;
  lits : Lit.t array; (* mutable order (watch swaps), fixed multiset *)
  learned : bool;
  mutable activity : float; (* always quantised, see [quantise] *)
  mutable glue : int;
  mutable used : bool;
  mutable deleted : bool;
}

(* A watcher mirrors one stride-2 (tag, cref) pair of the arena solver:
   [blocker] is the cached blocking literal (for [binary] clauses, the
   other literal of the clause). *)
type watcher = {
  mutable blocker : Lit.t;
  binary : bool;
  wc : clause;
}

type restart_state =
  | R_none
  | R_luby of Util.Luby.t * int ref
  | R_glucose of Util.Ema.t * Util.Ema.t * float

type t = {
  cfg : Config.t;
  n : int;
  stats : Solver_stats.t;
  assigns : int array;
  level : int array;
  reason : clause option array;
  phase : bool array;
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  watches : watcher Vec.t array;
  learnts : clause Vec.t;
  mutable next_cid : int;
  order : Cdcl.Var_heap.t;
  vmtf : Cdcl.Vmtf.t option;
  mutable var_inc : float;
  mutable cla_inc : float;
  restart : restart_state;
  mutable conflicts_since_restart : int;
  mutable next_reduce : int;
  prop_counts : int array;
  seen : int array;
  learnt : Lit.t Vec.t;
  analyze_toclear : Lit.t Vec.t;
  analyze_stack : Lit.t Vec.t;
  level_stamp : int array;
  mutable stamp_gen : int;
  mutable answer : result option;
  mutable trace : (Cdcl.Solver.trace_event -> unit) option;
}

(* The arena stores activities as a 63-bit order-preserving encoding
   that drops the lowest mantissa bit; mirror that quantisation after
   every activity mutation so ranking keys agree exactly. *)
let quantise x = Cdcl.Arena.decode_activity (Cdcl.Arena.encode_activity x)

let[@inline] lit_value t l =
  let v = t.assigns.(Lit.var l) in
  if Lit.is_pos l then v else -v

let decision_level t = Vec.length t.trail_lim

let make_restart_state (cfg : Config.t) =
  match cfg.restart_mode with
  | Config.No_restarts -> R_none
  | Config.Luby unit ->
    let it = Util.Luby.create ~unit in
    R_luby (it, ref (Util.Luby.next it))
  | Config.Glucose { fast_alpha; slow_alpha; margin } ->
    R_glucose
      (Util.Ema.create ~alpha:fast_alpha, Util.Ema.create ~alpha:slow_alpha, margin)

let[@inline] watch_list t l = t.watches.(Lit.to_index l)

let attach t c =
  let l0 = c.lits.(0) and l1 = c.lits.(1) in
  let binary = Array.length c.lits = 2 in
  Vec.push (watch_list t l0) { blocker = l1; binary; wc = c };
  Vec.push (watch_list t l1) { blocker = l0; binary; wc = c }

let enqueue t l reason =
  let v = Lit.var l in
  if t.assigns.(v) <> 0 then lit_value t l > 0
  else begin
    t.assigns.(v) <- (if Lit.is_pos l then 1 else -1);
    t.level.(v) <- decision_level t;
    t.reason.(v) <- reason;
    Vec.push t.trail l;
    true
  end

(* Mirrors the arena solver's propagate loop watcher for watcher. *)
let propagate t =
  let conflict = ref None in
  while !conflict = None && t.qhead < Vec.length t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let p_var = Lit.var p in
    let false_lit = Lit.negate p in
    let ws = t.watches.(Lit.to_index false_lit) in
    let n = Vec.length ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let w = Vec.get ws !i in
      incr i;
      if w.binary then begin
        Vec.set ws !j w;
        incr j;
        let other = w.blocker in
        let v = lit_value t other in
        if v > 0 then ()
        else if v < 0 then begin
          conflict := Some w.wc;
          t.qhead <- Vec.length t.trail;
          while !i < n do
            Vec.set ws !j (Vec.get ws !i);
            incr i;
            incr j
          done
        end
        else begin
          ignore (enqueue t other (Some w.wc));
          t.stats.propagations <- t.stats.propagations + 1;
          t.prop_counts.(p_var) <- t.prop_counts.(p_var) + 1
        end
      end
      else if lit_value t w.blocker > 0 then begin
        Vec.set ws !j w;
        incr j
      end
      else begin
        let c = w.wc in
        if Lit.equal c.lits.(0) false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if (not (Lit.equal first w.blocker)) && lit_value t first > 0 then begin
          w.blocker <- first;
          Vec.set ws !j w;
          incr j
        end
        else begin
          let size = Array.length c.lits in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < size do
            let lk = c.lits.(!k) in
            if lit_value t lk >= 0 then begin
              c.lits.(1) <- lk;
              c.lits.(!k) <- false_lit;
              Vec.push t.watches.(Lit.to_index lk) { blocker = first; binary = false; wc = c };
              found := true
            end
            else incr k
          done;
          if not !found then begin
            w.blocker <- first;
            Vec.set ws !j w;
            incr j;
            if lit_value t first < 0 then begin
              conflict := Some c;
              t.qhead <- Vec.length t.trail;
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr i;
                incr j
              done
            end
            else begin
              ignore (enqueue t first (Some c));
              t.stats.propagations <- t.stats.propagations + 1;
              t.prop_counts.(p_var) <- t.prop_counts.(p_var) + 1
            end
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

(* --- activity management --- *)

let var_bump t v =
  (match t.vmtf with
  | Some q -> Cdcl.Vmtf.bump q v
  | None -> ());
  Cdcl.Var_heap.bump t.order v t.var_inc;
  if Cdcl.Var_heap.decay_check t.order > 1e100 then begin
    Cdcl.Var_heap.rescale t.order 1e-100;
    t.var_inc <- t.var_inc *. 1e-100
  end

let var_decay t = t.var_inc <- t.var_inc /. t.cfg.var_decay

let cla_bump t c =
  c.activity <- quantise (c.activity +. t.cla_inc);
  if c.activity > 1e20 then begin
    for idx = 0 to Vec.length t.learnts - 1 do
      let cr = Vec.get t.learnts idx in
      cr.activity <- quantise (cr.activity *. 1e-20)
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. t.cfg.clause_decay

(* --- LBD --- *)

let compute_glue_lits t lits len getl =
  t.stamp_gen <- t.stamp_gen + 1;
  let g = ref 0 in
  for k = 0 to len - 1 do
    let lv = t.level.(Lit.var (getl lits k)) in
    if lv > 0 && t.level_stamp.(lv) <> t.stamp_gen then begin
      t.level_stamp.(lv) <- t.stamp_gen;
      incr g
    end
  done;
  !g

let compute_glue_clause t c =
  compute_glue_lits t c.lits (Array.length c.lits) (fun a k -> a.(k))

let compute_glue_vec t vec =
  compute_glue_lits t vec (Vec.length vec) (fun v k -> Vec.get v k)

(* --- backtracking --- *)

let backtrack t target_level =
  if decision_level t > target_level then begin
    let bound = Vec.get t.trail_lim target_level in
    for i = Vec.length t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      if t.cfg.phase_saving then t.phase.(v) <- t.assigns.(v) > 0;
      t.assigns.(v) <- 0;
      t.reason.(v) <- None;
      Cdcl.Var_heap.insert t.order v;
      match t.vmtf with
      | Some q -> Cdcl.Vmtf.on_unassign q v
      | None -> ()
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim target_level;
    t.qhead <- bound
  end

(* --- conflict analysis --- *)

let abstract_level t v = 1 lsl (t.level.(v) land 31)

let lit_redundant t p abstract_levels =
  Vec.clear t.analyze_stack;
  Vec.push t.analyze_stack p;
  let top = Vec.length t.analyze_toclear in
  let ok = ref true in
  while !ok && not (Vec.is_empty t.analyze_stack) do
    let x = Vec.pop t.analyze_stack in
    let xv = Lit.var x in
    let c = Option.get t.reason.(xv) in
    let size = Array.length c.lits in
    let k = ref 0 in
    while !ok && !k < size do
      let q = c.lits.(!k) in
      incr k;
      let v = Lit.var q in
      if v <> xv && t.seen.(v) = 0 && t.level.(v) > 0 then begin
        if t.reason.(v) <> None && abstract_level t v land abstract_levels <> 0
        then begin
          t.seen.(v) <- 1;
          Vec.push t.analyze_stack q;
          Vec.push t.analyze_toclear q
        end
        else begin
          for j = Vec.length t.analyze_toclear - 1 downto top do
            t.seen.(Lit.var (Vec.get t.analyze_toclear j)) <- 0
          done;
          Vec.shrink t.analyze_toclear top;
          ok := false
        end
      end
    done
  done;
  !ok

let analyze t confl =
  let learnt = t.learnt in
  Vec.clear learnt;
  Vec.push learnt (Lit.pos 1);
  let path_count = ref 0 in
  let p_var = ref (-1) in
  let p_lit = ref (Lit.pos 1) in
  let index = ref (Vec.length t.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    let cl = !c in
    if cl.learned then begin
      cla_bump t cl;
      cl.used <- true;
      let g = compute_glue_clause t cl in
      if g < cl.glue then cl.glue <- g
    end;
    let skip_var = !p_var in
    for k = 0 to Array.length cl.lits - 1 do
      let q = cl.lits.(k) in
      let v = Lit.var q in
      if v <> skip_var && t.seen.(v) = 0 && t.level.(v) > 0 then begin
        var_bump t v;
        t.seen.(v) <- 1;
        if t.level.(v) >= decision_level t then incr path_count
        else Vec.push learnt q
      end
    done;
    while t.seen.(Lit.var (Vec.get t.trail !index)) = 0 do
      decr index
    done;
    let pl = Vec.get t.trail !index in
    decr index;
    p_var := Lit.var pl;
    p_lit := pl;
    t.seen.(!p_var) <- 0;
    decr path_count;
    if !path_count <= 0 then continue := false
    else c := Option.get t.reason.(!p_var)
  done;
  let asserting = Lit.negate !p_lit in
  Vec.set learnt 0 asserting;
  Vec.clear t.analyze_toclear;
  Vec.iter (fun l -> Vec.push t.analyze_toclear l) learnt;
  let before = Vec.length learnt in
  if t.cfg.minimize then begin
    let abstract_levels =
      Vec.fold (fun acc l -> acc lor abstract_level t (Lit.var l)) 0 learnt
    in
    let keep l =
      Lit.equal l asserting
      || t.reason.(Lit.var l) = None
      || not (lit_redundant t l abstract_levels)
    in
    Vec.filter_in_place keep learnt
  end;
  t.stats.minimized_literals <-
    t.stats.minimized_literals + (before - Vec.length learnt);
  Vec.iter (fun l -> t.seen.(Lit.var l) <- 0) t.analyze_toclear;
  let bt_level =
    if Vec.length learnt = 1 then 0
    else begin
      let max_i = ref 1 in
      for k = 2 to Vec.length learnt - 1 do
        if t.level.(Lit.var (Vec.get learnt k)) > t.level.(Lit.var (Vec.get learnt !max_i))
        then max_i := k
      done;
      let tmp = Vec.get learnt 1 in
      Vec.set learnt 1 (Vec.get learnt !max_i);
      Vec.set learnt !max_i tmp;
      t.level.(Lit.var (Vec.get learnt 1))
    end
  in
  let glue = compute_glue_vec t learnt in
  (bt_level, glue)

(* --- reduce --- *)

let locked t c =
  let is_reason v =
    t.assigns.(v) <> 0
    && match t.reason.(v) with Some r -> r == c | None -> false
  in
  is_reason (Lit.var c.lits.(0))
  || (Array.length c.lits = 2 && is_reason (Lit.var c.lits.(1)))

let flush_watches t =
  Array.iter (fun ws -> Vec.filter_in_place (fun w -> not w.wc.deleted) ws) t.watches

let reduce t =
  t.stats.reduces <- t.stats.reduces + 1;
  let pc = t.prop_counts in
  let f_max = Array.fold_left max 0 pc in
  let alpha = Policy.alpha_of t.cfg.policy in
  (* Candidates in learnt order, ranked ascending by (key, cid) — the
     same total order as the arena solver's packed-key sort. *)
  let candidates = ref [] in
  for idx = Vec.length t.learnts - 1 downto 0 do
    let c = Vec.get t.learnts idx in
    if c.glue <= t.cfg.tier1_glue || locked t c then ()
    else begin
      let frequency =
        match alpha with
        | Some alpha -> Policy.clause_frequency ~alpha ~f_max ~counts:pc ~lits:c.lits
        | None -> 0
      in
      let info =
        { Policy.id = c.cid; glue = c.glue; size = Array.length c.lits;
          activity = c.activity; frequency }
      in
      candidates := (c, info) :: !candidates
    end
  done;
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> Policy.compare_clauses t.cfg.policy a b)
      !candidates
  in
  let n = List.length ranked in
  let to_delete = int_of_float (t.cfg.reduce_fraction *. float_of_int n) in
  List.iteri
    (fun i (c, _) ->
      if i < to_delete then begin
        c.deleted <- true;
        t.stats.deleted_total <- t.stats.deleted_total + 1;
        match t.trace with
        | Some f -> f (Cdcl.Solver.Deleted (Array.copy c.lits))
        | None -> ()
      end)
    ranked;
  if to_delete > 0 then begin
    Vec.filter_in_place (fun c -> not c.deleted) t.learnts;
    flush_watches t
  end;
  Array.fill pc 0 (Array.length pc) 0

(* --- restarts --- *)

let note_conflict_for_restart t glue =
  t.conflicts_since_restart <- t.conflicts_since_restart + 1;
  match t.restart with
  | R_none | R_luby _ -> ()
  | R_glucose (fast, slow, _) ->
    let g = float_of_int glue in
    Util.Ema.update fast g;
    Util.Ema.update slow g

let should_restart t =
  match t.restart with
  | R_none -> false
  | R_luby (_, limit) -> t.conflicts_since_restart >= !limit
  | R_glucose (fast, slow, margin) ->
    t.conflicts_since_restart >= 50
    && Util.Ema.count slow > 100
    && Util.Ema.value fast > margin *. Util.Ema.value slow

let do_restart t =
  t.stats.restarts <- t.stats.restarts + 1;
  t.conflicts_since_restart <- 0;
  (match t.restart with
  | R_luby (it, limit) -> limit := Util.Luby.next it
  | R_none | R_glucose _ -> ());
  backtrack t 0

(* --- creation --- *)

exception Trivially_unsat

let add_original t lits =
  let sorted = List.sort_uniq Lit.compare (Array.to_list lits) in
  let rec tautology = function
    | a :: (b :: _ as rest) ->
      Lit.equal (Lit.negate a) b || tautology rest
    | _ -> false
  in
  if not (tautology sorted) then begin
    match sorted with
    | [] -> raise Trivially_unsat
    | [ l ] -> if not (enqueue t l None) then raise Trivially_unsat
    | _ ->
      let c =
        { cid = t.next_cid; lits = Array.of_list sorted; learned = false;
          activity = 0.0; glue = 0; used = false; deleted = false }
      in
      t.next_cid <- t.next_cid + 1;
      attach t c
  end

let dummy_clause =
  { cid = -1; lits = [||]; learned = false; activity = 0.0; glue = 0;
    used = false; deleted = false }

let create ?(config = Config.default) formula =
  let n = Cnf.Formula.num_vars formula in
  let dummy_watcher = { blocker = Lit.pos 1; binary = false; wc = dummy_clause } in
  let t =
    {
      cfg = config;
      n;
      stats = Solver_stats.create ();
      assigns = Array.make (n + 1) 0;
      level = Array.make (n + 1) 0;
      reason = Array.make (n + 1) None;
      phase = Array.make (n + 1) false;
      trail = Vec.create ~dummy:(Lit.pos 1) ();
      trail_lim = Vec.create ~dummy:0 ();
      qhead = 0;
      watches = Array.init ((2 * (n + 1)) + 2) (fun _ -> Vec.create ~dummy:dummy_watcher ());
      learnts = Vec.create ~dummy:dummy_clause ();
      next_cid = 0;
      order = Cdcl.Var_heap.create ~num_vars:n;
      vmtf =
        (match config.branching with
        | Config.Evsids -> None
        | Config.Vmtf -> Some (Cdcl.Vmtf.create ~num_vars:n));
      var_inc = 1.0;
      cla_inc = 1.0;
      restart = make_restart_state config;
      conflicts_since_restart = 0;
      next_reduce = config.reduce_first;
      prop_counts = Array.make (n + 1) 0;
      seen = Array.make (n + 1) 0;
      learnt = Vec.create ~dummy:(Lit.pos 1) ();
      analyze_toclear = Vec.create ~dummy:(Lit.pos 1) ();
      analyze_stack = Vec.create ~dummy:(Lit.pos 1) ();
      level_stamp = Array.make (n + 2) 0;
      stamp_gen = 0;
      answer = None;
      trace = None;
    }
  in
  (try Cnf.Formula.iter_clauses (fun c -> add_original t c) formula
   with Trivially_unsat -> t.answer <- Some Unsat);
  t

let install_learnt t glue =
  t.stats.learned_total <- t.stats.learned_total + 1;
  (match t.trace with
  | Some f -> f (Cdcl.Solver.Learned (Vec.to_array t.learnt))
  | None -> ());
  let learnt = t.learnt in
  if Vec.length learnt = 1 then begin
    backtrack t 0;
    ignore (enqueue t (Vec.get learnt 0) None)
  end
  else begin
    let c =
      { cid = t.next_cid; lits = Vec.to_array learnt; learned = true;
        activity = 0.0; glue; used = false; deleted = false }
    in
    t.next_cid <- t.next_cid + 1;
    Vec.push t.learnts c;
    attach t c;
    ignore (enqueue t (Vec.get learnt 0) (Some c))
  end

(* --- decisions --- *)

let rec pick_from_heap t =
  if Cdcl.Var_heap.is_empty t.order then None
  else begin
    let v = Cdcl.Var_heap.remove_max t.order in
    if t.assigns.(v) = 0 then Some v else pick_from_heap t
  end

let pick_branch_var t =
  match t.vmtf with
  | Some q -> Cdcl.Vmtf.pick q ~assigned:(fun v -> t.assigns.(v) <> 0)
  | None -> pick_from_heap t

let decide t v =
  t.stats.decisions <- t.stats.decisions + 1;
  Vec.push t.trail_lim (Vec.length t.trail);
  let l = Lit.make v t.phase.(v) in
  ignore (enqueue t l None);
  let dl = decision_level t in
  if dl > t.stats.max_decision_level then t.stats.max_decision_level <- dl

(* --- main search --- *)

let model t = Array.init (t.n + 1) (fun v -> v > 0 && t.assigns.(v) > 0)

let budget_exhausted t ~conflicts0 ~propagations0 ~deadline =
  (match t.cfg.max_conflicts with
  | Some m -> t.stats.conflicts - conflicts0 >= m
  | None -> false)
  || (match t.cfg.max_propagations with
     | Some m -> t.stats.propagations - propagations0 >= m
     | None -> false)
  ||
  match deadline with
  | Some d -> Runtime.Clock.now () >= d
  | None -> false

let search t =
  let conflicts0 = t.stats.conflicts and propagations0 = t.stats.propagations in
  let deadline =
    Option.map (fun s -> Runtime.Clock.now () +. s) t.cfg.max_wall_seconds
  in
  let result = ref None in
  while !result = None do
    match propagate t with
    | Some confl ->
      t.stats.conflicts <- t.stats.conflicts + 1;
      if decision_level t = 0 then result := Some Unsat
      else begin
        let bt_level, glue = analyze t confl in
        backtrack t bt_level;
        install_learnt t glue;
        var_decay t;
        cla_decay t;
        note_conflict_for_restart t glue;
        if t.stats.conflicts >= t.next_reduce then begin
          reduce t;
          t.next_reduce <-
            t.next_reduce + t.cfg.reduce_first + (t.stats.reduces * t.cfg.reduce_inc)
        end;
        if budget_exhausted t ~conflicts0 ~propagations0 ~deadline then
          result := Some Unknown
      end
    | None ->
      if budget_exhausted t ~conflicts0 ~propagations0 ~deadline then
        result := Some Unknown
      else if should_restart t && decision_level t > 0 then do_restart t
      else begin
        match pick_branch_var t with
        | Some v -> decide t v
        | None -> result := Some (Sat (model t))
      end
  done;
  Option.get !result

let solve t =
  match t.answer with
  | Some (Sat _ | Unsat) -> Option.get t.answer
  | Some Unknown | None ->
    let r = search t in
    t.answer <- Some r;
    r

let stats t = t.stats
let num_vars t = t.n
let learned_clause_count t = Vec.length t.learnts
let propagation_counts t = Array.copy t.prop_counts
let set_trace t f = t.trace <- Some f

let solve_formula ?config formula =
  let t = create ?config formula in
  let r = solve t in
  (r, Solver_stats.copy (stats t))

(** Finite-difference validation of the autodiff stack.

    Rebuilds each {!Core} layer's forward pass as a scalar loss and
    compares every parameter's backpropagated gradient against central
    finite differences, element by element. The relative error uses the
    symmetric denominator [max floor (|numeric| + |analytic|)] so that
    near-zero gradients are judged absolutely.

    This complements the op-level checks in [test/test_nn.ml]: those
    validate individual tape operations, these validate whole layers —
    composition, parameter routing, and the sparse gather/scatter paths
    the MPNN takes through real graph data. *)

type report = {
  layer : string;
  param : string;
  elements : int;  (** Parameter entries checked. *)
  max_rel_err : float;
}

val check_params :
  ?eps:float ->
  layer:string ->
  params:Nn.Param.t list ->
  loss:(unit -> Nn.Ad.tape * Nn.Ad.v) ->
  unit ->
  report list
(** Generic checker: [loss] must rebuild the full forward pass from the
    current parameter values on every call and return a [1 x 1] node.
    One report per parameter. [eps] defaults to [1e-4]. *)

val check_mpnn : ?seed:int -> unit -> report list
(** Message-passing layer (Eqs. 6–7) over a random bipartite graph. *)

val check_attention : ?seed:int -> unit -> report list
(** Linear-attention layer (Eqs. 8–9). *)

val check_hgt : ?seed:int -> unit -> report list
(** Stacked HGT layer (MPNNs + attention, Eqs. 3–5). *)

val check_model : ?seed:int -> unit -> report list
(** Full classifier including readout MLP and BCE loss (Eqs. 10–11). *)

val run_all : ?seed:int -> unit -> report list
(** All four layer checks. *)

val max_error : report list -> float

val passed : ?tol:float -> report list -> bool
(** Every report under [tol] (default [1e-4]). *)

val pp_report : Format.formatter -> report -> unit

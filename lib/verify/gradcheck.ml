(* Layer-level gradient checking against central finite differences. *)

module Mat = Tensor.Mat
module Ad = Nn.Ad

type report = {
  layer : string;
  param : string;
  elements : int;
  max_rel_err : float;
}

(* Relative error with a floor so near-zero gradient pairs are compared
   absolutely instead of dividing by noise. *)
let rel_err numeric analytic =
  let denom = Float.max 1e-2 (Float.abs numeric +. Float.abs analytic) in
  Float.abs (numeric -. analytic) /. denom

(* Zero-initialised biases put the model exactly on non-differentiable
   points: with the all-ones/all-zeros initial graph features every
   variable row is identical, so the readout's max pooling sits on a
   tie where one-sided slopes differ and finite differences measure
   neither subgradient. Jittering every parameter moves the check to a
   generic (differentiable) point without changing what is verified. *)
let jitter rng params =
  List.iter
    (fun (p : Nn.Param.t) ->
      p.Nn.Param.value <-
        Mat.map (fun x -> x +. Util.Rng.uniform rng (-0.1) 0.1) p.Nn.Param.value)
    params

let check_params ?(eps = 1e-4) ~layer ~params ~loss () =
  List.iter Nn.Param.zero_grad params;
  let tape, l = loss () in
  Ad.backward tape l;
  let scalar_loss () = Mat.get (Ad.value (snd (loss ()))) 0 0 in
  List.map
    (fun (p : Nn.Param.t) ->
      let v = p.Nn.Param.value in
      let rows = Mat.rows v and cols = Mat.cols v in
      let worst = ref 0.0 in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          let orig = Mat.get v i j in
          Mat.set v i j (orig +. eps);
          let fp = scalar_loss () in
          Mat.set v i j (orig -. eps);
          let fm = scalar_loss () in
          Mat.set v i j orig;
          let numeric = (fp -. fm) /. (2.0 *. eps) in
          let analytic = Mat.get p.Nn.Param.grad i j in
          worst := Float.max !worst (rel_err numeric analytic)
        done
      done;
      { layer; param = p.Nn.Param.name; elements = rows * cols; max_rel_err = !worst })
    params

(* A small fixed CNF gives every check a real (sparse, signed) graph. *)
let test_graph seed =
  let rng = Util.Rng.create seed in
  let f = Gen.Ksat.generate rng ~num_vars:6 ~num_clauses:12 ~k:3 in
  Satgraph.Bigraph.of_formula f

let fixed_features rng rows cols =
  let m = Mat.random_uniform rng rows cols 1.0 in
  fun tape -> Ad.const tape m

let sum_pair tape a b = Ad.add tape (Ad.sum_all tape a) (Ad.sum_all tape b)

let check_mpnn ?(seed = 11) () =
  let rng = Util.Rng.create seed in
  let g = test_graph (seed + 1) in
  let layer = Core.Mpnn.create rng ~var_in:3 ~clause_in:2 ~out_dim:4 ~name:"gc_mpnn" in
  jitter rng (Core.Mpnn.params layer);
  let vf = fixed_features rng g.Satgraph.Bigraph.num_vars 3 in
  let cf = fixed_features rng g.Satgraph.Bigraph.num_clauses 2 in
  let loss () =
    let tape = Ad.tape () in
    let v', c' =
      Core.Mpnn.forward tape layer g ~var_feats:(vf tape) ~clause_feats:(cf tape)
    in
    (tape, sum_pair tape v' c')
  in
  check_params ~layer:"mpnn" ~params:(Core.Mpnn.params layer) ~loss ()

let check_attention ?(seed = 13) () =
  let rng = Util.Rng.create seed in
  let layer = Core.Attention.create rng ~dim:4 ~name:"gc_attn" in
  jitter rng (Core.Attention.params layer);
  let x = fixed_features rng 7 4 in
  let loss () =
    let tape = Ad.tape () in
    (tape, Ad.sum_all tape (Core.Attention.forward tape layer (x tape)))
  in
  check_params ~layer:"attention" ~params:(Core.Attention.params layer) ~loss ()

let check_hgt ?(seed = 17) () =
  let rng = Util.Rng.create seed in
  let g = test_graph (seed + 1) in
  let layer =
    Core.Hgt.create rng ~var_in:3 ~clause_in:2 ~hidden:4 ~mpnn_layers:2
      ~use_attention:true ~name:"gc_hgt"
  in
  jitter rng (Core.Hgt.params layer);
  let vf = fixed_features rng g.Satgraph.Bigraph.num_vars 3 in
  let cf = fixed_features rng g.Satgraph.Bigraph.num_clauses 2 in
  let loss () =
    let tape = Ad.tape () in
    let v', c' =
      Core.Hgt.forward tape layer g ~var_feats:(vf tape) ~clause_feats:(cf tape)
    in
    (tape, sum_pair tape v' c')
  in
  check_params ~layer:"hgt" ~params:(Core.Hgt.params layer) ~loss ()

let check_model ?(seed = 23) () =
  let g = test_graph (seed + 1) in
  let config =
    {
      Core.Model.hidden_dim = 4;
      hgt_layers = 1;
      mpnn_per_hgt = 1;
      use_attention = true;
      normalize_readout = true;
      head_hidden = 4;
      seed;
    }
  in
  let model = Core.Model.create config in
  jitter (Util.Rng.create (seed + 2)) (Core.Model.params model);
  let loss () =
    let tape = Ad.tape () in
    let logit = Core.Model.forward_logit model tape g in
    (tape, Ad.bce_with_logits tape logit 1.0)
  in
  check_params ~layer:"model" ~params:(Core.Model.params model) ~loss ()

let run_all ?(seed = 0) () =
  check_mpnn ~seed:(seed + 11) ()
  @ check_attention ~seed:(seed + 13) ()
  @ check_hgt ~seed:(seed + 17) ()
  @ check_model ~seed:(seed + 23) ()

let max_error reports =
  List.fold_left (fun acc r -> Float.max acc r.max_rel_err) 0.0 reports

let passed ?(tol = 1e-4) reports =
  reports <> [] && List.for_all (fun r -> r.max_rel_err < tol) reports

let pp_report ppf r =
  Format.fprintf ppf "%-10s %-28s %4d elems  max rel err %.3e" r.layer r.param
    r.elements r.max_rel_err

(** Satisfiability-preserving formula transforms.

    Metamorphic testing for SAT solvers: each transform maps a formula
    to one with the {e same} SAT/UNSAT verdict (though not necessarily
    the same models), so a solver whose answer changes under any of
    them is unsound. The transforms below cover renaming, syntactic
    reordering, polarity symmetry, and redundant-clause robustness. *)

type transform =
  | Permute_vars  (** Rename variables by a random permutation. *)
  | Shuffle_clauses  (** Permute clause order and literal order. *)
  | Flip_polarity
      (** Negate every occurrence of a random subset of variables (a
          bijection on assignments). *)
  | Duplicate_clauses  (** Append copies of randomly chosen clauses. *)
  | Inject_tautologies
      (** Append clauses containing a complementary literal pair. *)

val all : transform list

val name : transform -> string

val apply : Util.Rng.t -> transform -> Cnf.Formula.t -> Cnf.Formula.t
(** [apply rng t f] draws the transform's randomness from [rng]. The
    result is equisatisfiable with [f] and uses the same variable
    count. *)

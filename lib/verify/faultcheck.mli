(** Seeded fault-injection scenarios for the fault-tolerance layer.

    Each scenario arms {!Runtime.Fault} (or corrupts state by hand),
    drives the real recovery path, and asserts the documented outcome:
    a torn or bit-flipped checkpoint falls back to the [.bak] copy, a
    poisoned gradient is skipped with a learning-rate backoff, a
    failing inference degrades to the default policy, a crashing
    instance is retried, and a killed campaign resumes from its JSONL
    journal. The WAL scenarios cover the durable-session contract: a
    torn append truncates back to the exact durable prefix, a crash
    before fsync keeps keyed retries exactly-once, a crash
    mid-snapshot falls back to segment replay, and a recovered store
    answers a random op sequence identically to an uninterrupted
    oracle. Everything is deterministic in [seed], so a failure
    replays exactly. *)

type outcome = {
  scenario : string;
  passed : bool;
  detail : string;  (** What was observed (or what went wrong). *)
}

type report = {
  seed : int;
  outcomes : outcome list;
}

val run_all : ?dir:string -> seed:int -> unit -> report
(** Run every scenario. [dir] (default: a fresh temp directory) holds
    the scratch files. Always disarms fault injection before
    returning. *)

val passed : report -> bool
val pp_report : Format.formatter -> report -> unit

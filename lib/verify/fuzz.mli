(** Seeded differential fuzzing of the CDCL solver.

    Each case draws a small instance from one of the five generator
    families in {!Gen} (round-robin), then checks, for every
    clause-deletion policy:

    - the verdict matches the {!Oracle} DPLL reference (when the oracle
      finishes within budget);
    - all policies agree with each other;
    - SAT models satisfy the original formula;
    - UNSAT runs emit a DRUP proof accepted by {!Cdcl.Drup_check};
    - the verdict is stable under every {!Metamorphic} transform.

    A failing case is shrunk by greedy clause- then literal-deletion to
    a minimal DIMACS reproducer, and the report carries a replay
    command ([fuzz --seed N --case K]) that regenerates exactly that
    case: per-case RNGs are derived from [seed] and the case index, so
    cases are independent and individually replayable. *)

type solve_fn =
  Cdcl.Config.t -> Cnf.Formula.t -> Cdcl.Solver.result * Cdcl.Drup.t option
(** The system under test: must return the verdict and, for UNSAT runs,
    the DRUP proof log. *)

val default_solve : solve_fn
(** The real {!Cdcl.Solver} with a proof log attached. *)

val break_lost_clause : solve_fn
(** A deliberately unsound wrapper that silently drops the last clause
    of the input (the observable effect of e.g. a skipped watch
    update). Exists so tests can demonstrate that the harness catches
    soundness bugs; never use it for real verification. *)

val all_policies : Cdcl.Policy.t list
(** Every {!Cdcl.Policy.t} variant exercised by default. *)

type discrepancy = {
  case_index : int;
  family : string;
  detail : string;  (** Which check failed and how. *)
  dimacs : string;  (** Shrunk reproducer in DIMACS format. *)
  replay : string;  (** CLI invocation that replays the original case. *)
}

type report = {
  seed : int;
  cases_run : int;
  checks_run : int;  (** Total individual assertions evaluated. *)
  discrepancies : discrepancy list;
}

val generate_case : seed:int -> int -> string * Cnf.Formula.t
(** [generate_case ~seed i] is case [i]'s (family name, formula) —
    deterministic in [(seed, i)]. *)

val shrink : (Cnf.Formula.t -> bool) -> Cnf.Formula.t -> Cnf.Formula.t
(** [shrink still_fails f] greedily removes clauses (chunks, then
    singles) and literals while [still_fails] holds. Exceptions in the
    predicate count as "no longer fails". *)

val run :
  ?solve:solve_fn ->
  ?policies:Cdcl.Policy.t list ->
  ?metamorphic:bool ->
  ?check_proofs:bool ->
  ?oracle_budget:int ->
  ?only_case:int ->
  ?on_case:(int -> string -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  report
(** Runs cases [0 .. cases-1] (or only [only_case]). [on_case] is a
    progress callback invoked before each case with its index and
    family. *)

val replay_command : seed:int -> case_index:int -> string

val pp_report : Format.formatter -> report -> unit

(** {2 Arena vs. reference differential mode}

    Runs the arena-backed {!Cdcl.Solver} and the record-based
    {!Refsolver} side by side on the seeded corpus, in two arms per
    case. Arm one (inprocessing off) uses an aggressive reduce
    schedule (policy rotating per case) that forces frequent clause
    deletion and arena compaction, and demands bit-for-bit agreement:
    verdicts, models, every statistics counter, and the
    learned/deleted trace streams; UNSAT arena proofs are
    DRUP-checked. Arm two re-solves with inprocessing enabled on a
    pass-per-restart schedule (vivification, subsumption, tier
    promotion, mid-pass compaction) and checks verdict agreement,
    model validity, and the DRUP proof — statistics equality is gated
    to the inprocessing-off arm because inprocessing legitimately
    changes the search trajectory. Every failure kind is shrunk to a
    minimal DIMACS reproducer. Exposed on the CLI as
    [fuzz --diff-ref]. *)

type ref_diff_failure = {
  rdf_case : int;
  rdf_family : string;
  rdf_detail : string;  (** Which check failed and how. *)
  rdf_dimacs : string;
      (** Shrunk reproducer — produced for every failure kind,
          statistics/trace divergence included. *)
  rdf_replay : string;
}

type ref_diff_report = {
  rd_seed : int;
  rd_cases : int;
  rd_compactions : int;  (** Total arena GCs across all runs. *)
  rd_rewrites : int;
      (** Vivification/subsumption/strengthening rewrites performed by
          the inprocessing arm — a coverage signal that the passes
          actually ran. *)
  rd_failures : ref_diff_failure list;
}

val run_ref_diff :
  ?on_case:(int -> string -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  ref_diff_report

val pp_ref_diff_report : Format.formatter -> ref_diff_report -> unit

(** {2 Incremental API differential mode}

    Randomized IPASIR-style call sequences against a
    fresh-solver-per-step oracle: each sequence interleaves
    [add_clause], [new_var], [solve], and [solve_with_assumptions] on
    one long-lived solver; at every solve step a brand-new solver is
    built from the accumulated formula and the verdict constructors
    must match exactly. SAT models are validated against the
    accumulated formula (and the assumptions, when present); UNSAT
    cores must be assumption subsets that reproduce UNSAT on a fresh
    solver; plain solves additionally cross-check {!Refsolver} and
    assert that no stale core leaks from an earlier assumption run.
    Sequences are deterministic in [(seed, index)]. Run on the CLI as
    part of [fuzz --diff-ref]. *)

type incr_failure = {
  if_case : int;  (** Sequence index. *)
  if_step : int;  (** API-call step within the sequence. *)
  if_detail : string;
  if_replay : string;
}

type incr_report = {
  ir_seed : int;
  ir_sequences : int;
  ir_steps : int;  (** Total API calls issued across all sequences. *)
  ir_solves : int;  (** Solve steps differentially checked. *)
  ir_checks : int;
  ir_failures : incr_failure list;
}

val run_incremental_diff :
  ?on_case:(int -> unit) -> seed:int -> sequences:int -> unit -> incr_report

val pp_incr_report : Format.formatter -> incr_report -> unit

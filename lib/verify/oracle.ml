(* Reference DPLL solver. Correctness over speed: assignments live in a
   plain array, propagation rescans every clause until fixpoint, and
   branching picks the first unassigned variable. *)

type verdict =
  | Sat of bool array
  | Unsat

exception Out_of_budget

let solve ?(max_nodes = 500_000) f =
  let n = Cnf.Formula.num_vars f in
  let clauses = Array.init (Cnf.Formula.num_clauses f) (Cnf.Formula.clause f) in
  (* assign.(v): 0 unassigned, 1 true, -1 false. *)
  let assign = Array.make (n + 1) 0 in
  let nodes = ref 0 in
  let lit_value lit =
    match assign.(Cnf.Lit.var lit) with
    | 0 -> 0
    | v -> if v > 0 = Cnf.Lit.is_pos lit then 1 else -1
  in
  let undo trail = List.iter (fun v -> assign.(v) <- 0) trail in
  (* Scan all clauses to fixpoint. [Some trail] lists the variables this
     call assigned; on conflict those assignments are rolled back and
     the result is [None]. *)
  let propagate () =
    let trail = ref [] in
    let conflict = ref false in
    let changed = ref true in
    while !changed && not !conflict do
      changed := false;
      Array.iter
        (fun clause ->
          if not !conflict then begin
            let satisfied = ref false in
            let unassigned = ref 0 in
            let last_free = ref clause.(0) in
            Array.iter
              (fun lit ->
                match lit_value lit with
                | 1 -> satisfied := true
                | 0 ->
                  incr unassigned;
                  last_free := lit
                | _ -> ())
              clause;
            if not !satisfied then
              match !unassigned with
              | 0 -> conflict := true
              | 1 ->
                let lit = !last_free in
                let v = Cnf.Lit.var lit in
                assign.(v) <- (if Cnf.Lit.is_pos lit then 1 else -1);
                trail := v :: !trail;
                changed := true
              | _ -> ()
          end)
        clauses
    done;
    if !conflict then begin
      undo !trail;
      None
    end
    else Some !trail
  in
  let rec first_unassigned v =
    if v > n then None
    else if assign.(v) = 0 then Some v
    else first_unassigned (v + 1)
  in
  let rec search () =
    incr nodes;
    if !nodes > max_nodes then raise Out_of_budget;
    match propagate () with
    | None -> false
    | Some trail -> (
      match first_unassigned 1 with
      | None -> true (* Every clause checked non-conflicting: SAT. *)
      | Some v ->
        let try_value value =
          assign.(v) <- value;
          let ok = search () in
          if not ok then assign.(v) <- 0;
          ok
        in
        if try_value 1 then true
        else if try_value (-1) then true
        else begin
          undo trail;
          false
        end)
  in
  match search () with
  | true -> Some (Sat (Array.init (n + 1) (fun v -> assign.(v) > 0)))
  | false -> Some Unsat
  | exception Out_of_budget -> None

let verdict_name = function
  | Sat _ -> "SAT"
  | Unsat -> "UNSAT"

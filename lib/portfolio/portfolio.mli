(** Portfolio solving with learned-clause sharing.

    Runs K diversified solver configurations on the same formula, each
    in a {!Runtime.Supervisor} worker process, first decisive verdict
    wins and the losers are cancelled. Workers exchange learned
    clauses through the parent over pipes, in lockstep {e sharing
    epochs}: at its k-th restart boundary every worker ships its epoch
    exports ({!Cdcl.Share} blobs framed by {!Runtime.Frame}) and
    blocks until the parent has collected the epoch from every live
    participant and relayed each worker the others' clauses in sorted
    sender order. The lockstep barrier makes a fixed-seed run
    reproducible: worker trajectories are independent of OS
    scheduling, and the winner is decided at a barrier (lowest worker
    index among decisive verdicts), never by a wall-clock race. See
    DESIGN.md §12 for the determinism contract.

    Imports are RUP-validated by the solver before attachment, so the
    winning UNSAT proof stays DRUP-checkable despite foreign clauses.

    Fault hooks: {!Runtime.Fault.Share_torn_frame} (a worker tears its
    clause batch and drops to solo solving; the parent counts the torn
    frame and departs it from barriers) and
    {!Runtime.Fault.Portfolio_worker_kill} (the parent SIGKILLs one
    worker mid-exchange; the barrier continues without it). *)

type spec = { name : string; config : Cdcl.Config.t }

val diversify : k:int -> seed:int -> spec array
(** The diversification table: policies (default EVSIDS / the paper's
    frequency policy), inprocessing on/off, and per-worker Luby
    restart units perturbed deterministically by [seed]. *)

type verdict =
  | Sat of bool array  (** Model indexed by variable (index 0 unused). *)
  | Unsat of string option  (** DRUP proof text when [proof] was set. *)
  | Unknown

type outcome = {
  verdict : verdict;
  winner : int;  (** Winning worker index, or [-1] without a verdict. *)
  winner_name : string;
  epochs : int;  (** Sharing epochs completed by the parent. *)
  exported : int;  (** Clauses shipped by workers, summed. *)
  imported : int;  (** Clauses RUP-validated and attached, summed. *)
  rejected : int;  (** Foreign clauses dropped by importers, summed. *)
  torn_frames : int;  (** Corrupt clause batches dropped by the parent. *)
  workers_killed : int;  (** Workers lost to kills/crashes mid-exchange. *)
  cancel_seconds : float;  (** First decisive verdict -> all reaped. *)
  journal : string list;
      (** Deterministic run journal (one flat-JSON line per entry): a
          fixed seed reproduces it byte for byte. *)
}

val solve :
  ?k:int ->
  ?seed:int ->
  ?share:bool ->
  ?interval:int ->
  ?glue_limit:int ->
  ?per_epoch:int ->
  ?proof:bool ->
  ?mem_limit_mb:int ->
  ?max_conflicts:int ->
  ?journal_path:string ->
  Cnf.Formula.t ->
  outcome
(** [solve formula] with [k] workers (default 4), sharing on by
    default, exchanging every [interval] restarts (default 1).
    [proof] makes every worker record a DRUP trace so the winning
    UNSAT proof can be checked. [max_conflicts] bounds each worker
    (verdict [Unknown] when every worker exhausts it). [journal_path]
    additionally writes the deterministic journal to a file.
    Populates [portfolio.*] metrics in {!Obs.Metrics}. *)

module Frame = Runtime.Frame
module Supervisor = Runtime.Supervisor
module Fault = Runtime.Fault
module Journal = Runtime.Journal
module Solver = Cdcl.Solver
module Stats = Cdcl.Solver_stats
module Share = Cdcl.Share

type spec = { name : string; config : Cdcl.Config.t }

let diversify ~k ~seed =
  let stems =
    [|
      ("evsids", fun c -> c);
      ( "frequency",
        fun c -> { c with Cdcl.Config.policy = Cdcl.Policy.frequency_default } );
      ("inprocess", fun c -> Cdcl.Config.with_inprocess ~interval:4 true c);
      ( "frequency-inprocess",
        fun c ->
          Cdcl.Config.with_inprocess ~interval:6 true
            { c with Cdcl.Config.policy = Cdcl.Policy.frequency_default } );
    |]
  in
  let units = [| 100; 64; 150; 37 |] in
  Array.init (max 1 k) (fun i ->
      let stem, f = stems.(i mod 4) in
      let base = units.(i mod 4) + (16 * (i / 4)) in
      let jitter = abs ((seed * (i + 1)) + (seed asr 4)) mod 16 in
      let unit = max 16 (base + jitter) in
      let config =
        f { Cdcl.Config.default with restart_mode = Cdcl.Config.Luby unit }
      in
      { name = Printf.sprintf "w%d-%s-luby%d" i stem unit; config })

type verdict = Sat of bool array | Unsat of string option | Unknown

type outcome = {
  verdict : verdict;
  winner : int;
  winner_name : string;
  epochs : int;
  exported : int;
  imported : int;
  rejected : int;
  torn_frames : int;
  workers_killed : int;
  cancel_seconds : float;
  journal : string list;
}

(* --- metrics ----------------------------------------------------------- *)

let m_exported = Obs.Metrics.counter "portfolio.clauses_exported"
let m_imported = Obs.Metrics.counter "portfolio.clauses_imported"
let m_rejected = Obs.Metrics.counter "portfolio.clauses_rejected"
let m_epochs = Obs.Metrics.counter "portfolio.epochs"
let m_torn = Obs.Metrics.counter "portfolio.torn_frames"
let m_killed = Obs.Metrics.counter "portfolio.workers_killed"
let g_winner = Obs.Metrics.gauge "portfolio.winner"
let h_cancel = Obs.Metrics.histogram "portfolio.cancel_seconds"

(* --- worker ------------------------------------------------------------ *)

(* Runs inside the forked supervisor child. Exchange protocol, all
   frames via {!Runtime.Frame}:

   worker -> parent   "X <imported> <rejected>\n<Share blob>"
                      one per epoch; the blob carries epoch + exports
                      "D <verdict> <epochs> <exp> <imp> <rej> <conflicts>"
                      terminal
   parent -> worker   "I <epoch>\n<blob><blob>..."
                      the other participants' blobs, ascending sender

   The solver's share hook blocks on the import read, which is the
   lockstep barrier: the parent only relays once every live
   participant has submitted the epoch. Any transport failure (torn
   write fault, closed pipe, malformed payload) drops the worker out
   of sharing — it keeps solving solo rather than deadlocking the
   barrier, and the parent departs it on its side. *)
let worker_main ~idx ~spec ~formula ~up_w ~down_r ~share ~interval ~glue_limit
    ~per_epoch ~proof ~max_conflicts () =
  let config =
    match max_conflicts with
    | None -> spec.config
    | Some m -> Cdcl.Config.with_budget ~max_conflicts:m spec.config
  in
  let solver = Solver.create ~config formula in
  let drup = Cdcl.Drup.create () in
  if proof then Cdcl.Drup.attach drup solver;
  let alive = ref share in
  let reader = Frame.create_reader () in
  let read_import () =
    let rec go () =
      match Frame.next reader with
      | Some p -> Some p
      | None ->
        if Frame.malformed reader then None
        else (
          match Frame.read_into reader down_r with
          | `Data | `Blocked -> go () (* `Blocked is EINTR: heartbeat tick *)
          | `Eof -> None)
    in
    go ()
  in
  let hook ~epoch exports =
    if not !alive then []
    else begin
      let blob = Share.encode { Share.sender = idx; epoch; clauses = exports } in
      let st = Solver.stats solver in
      let msg =
        Printf.sprintf "X %d %d\n%s" st.Stats.shared_imported
          st.Stats.shared_rejected blob
      in
      let sent =
        if Fault.fires Fault.Share_torn_frame then begin
          (* Tear the batch: ship a prefix that cuts into the clause
             blob (the pipe frame itself stays whole, so the damage is
             the payload's to detect) and drop out of sharing. *)
          let cut = String.length msg - ((String.length blob / 2) + 1) in
          let torn = String.sub msg 0 (max 3 cut) in
          (try Frame.write up_w torn with Unix.Unix_error _ -> ());
          false
        end
        else
          try
            Frame.write up_w msg;
            true
          with Unix.Unix_error _ -> false
      in
      if not sent then begin
        alive := false;
        []
      end
      else
        match read_import () with
        | None ->
          alive := false;
          []
        | Some payload -> (
          match String.index_opt payload '\n' with
          | Some nl when String.length payload > 2 && payload.[0] = 'I' -> (
            let blobs =
              String.sub payload (nl + 1) (String.length payload - nl - 1)
            in
            match Share.decode_all blobs with
            | Ok batches ->
              List.concat_map (fun (b : Share.batch) -> b.clauses) batches
            | Error _ ->
              alive := false;
              [])
          | _ ->
            alive := false;
            [])
    end
  in
  if share then Solver.set_share ~interval ~glue_limit ~per_epoch solver hook;
  let result = Solver.solve solver in
  let st = Solver.stats solver in
  let verdict =
    match result with
    | Solver.Sat _ -> "SAT"
    | Solver.Unsat -> "UNSAT"
    | Solver.Unknown -> "UNKNOWN"
  in
  let epochs = Solver.share_epochs solver in
  (if !alive then
     try
       Frame.write up_w
         (Printf.sprintf "D %s %d %d %d %d %d" verdict epochs
            st.Stats.shared_exported st.Stats.shared_imported
            st.Stats.shared_rejected st.Stats.conflicts)
     with Unix.Unix_error _ -> ());
  let buf = Buffer.create 256 in
  Buffer.add_string buf verdict;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %d" st.Stats.shared_exported
       st.Stats.shared_imported st.Stats.shared_rejected epochs
       st.Stats.conflicts);
  Buffer.add_char buf '\n';
  (match result with
  | Solver.Sat model ->
    Buffer.add_string buf
      (String.init (Array.length model) (fun i -> if model.(i) then '1' else '0'))
  | Solver.Unsat ->
    if proof then begin
      Cdcl.Drup.conclude_unsat drup;
      Buffer.add_string buf (Cdcl.Drup.to_string drup)
    end
  | Solver.Unknown -> ());
  Ok (Buffer.contents buf)

(* --- parent ------------------------------------------------------------ *)

type msg =
  | Exports of { blob : string; epoch : int; count : int; imported : int; rejected : int }
  | Done of {
      verdict : string;
      epochs : int;
      exported : int;
      imported : int;
      rejected : int;
    }

type wstate = {
  idx : int;
  spec : spec;
  sup : Supervisor.t;
  up_r : Unix.file_descr;
  down_w : Unix.file_descr;
  reader : Frame.reader;
  inbox : msg Queue.t;
  mutable sharing : bool;
  mutable finished : Supervisor.verdict option;
  (* Best-known cumulative counters, from X and D reports. *)
  mutable exported : int;
  mutable imported : int;
  mutable rejected : int;
}

let ints_of_string s =
  try Some (List.map int_of_string (String.split_on_char ' ' (String.trim s)))
  with _ -> None

let parse_payload s =
  match String.split_on_char '\n' s with
  | verdict :: counters :: rest -> (
    match ints_of_string counters with
    | Some [ exported; imported; rejected; epochs; conflicts ] ->
      Some (verdict, exported, imported, rejected, epochs, conflicts,
            String.concat "\n" rest)
    | _ -> None)
  | _ -> None

let decisive = function "SAT" | "UNSAT" -> true | _ -> false

let solve ?(k = 4) ?(seed = 0) ?(share = true) ?(interval = 1) ?(glue_limit = 4)
    ?(per_epoch = 64) ?(proof = false) ?mem_limit_mb ?max_conflicts
    ?journal_path formula =
  if k < 1 then invalid_arg "Portfolio.solve: k must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let specs = diversify ~k ~seed in
  (* Every pipe exists before the first fork so each child can close
     every descriptor that is not its own pair — otherwise a sibling's
     inherited copy would keep a dead worker's pipe open forever. *)
  let pipes =
    Array.init k (fun _ ->
        let up_r, up_w = Unix.pipe () in
        let down_r, down_w = Unix.pipe () in
        (up_r, up_w, down_r, down_w))
  in
  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let limits = { Supervisor.default_limits with mem_limit_mb } in
  let workers =
    Array.init k (fun i ->
        let _, up_w, down_r, _ = pipes.(i) in
        let sup =
          Supervisor.spawn ~label:specs.(i).name limits (fun () ->
              Array.iteri
                (fun j (ur, uw, dr, dw) ->
                  if j = i then begin
                    close_quietly ur;
                    close_quietly dw
                  end
                  else begin
                    close_quietly ur;
                    close_quietly uw;
                    close_quietly dr;
                    close_quietly dw
                  end)
                pipes;
              worker_main ~idx:i ~spec:specs.(i) ~formula ~up_w ~down_r ~share
                ~interval ~glue_limit ~per_epoch ~proof ~max_conflicts ())
        in
        let up_r, _, _, down_w = pipes.(i) in
        Unix.set_nonblock up_r;
        {
          idx = i;
          spec = specs.(i);
          sup;
          up_r;
          down_w;
          reader = Frame.create_reader ();
          inbox = Queue.create ();
          sharing = share;
          finished = None;
          exported = 0;
          imported = 0;
          rejected = 0;
        })
  in
  Array.iter
    (fun (_, up_w, down_r, _) ->
      close_quietly up_w;
      close_quietly down_r)
    pipes;
  let journal = ref [] in
  let log fields = journal := Journal.encode fields :: !journal in
  log
    [
      ("event", Journal.String "portfolio_start");
      ("k", Journal.Int k);
      ("seed", Journal.Int seed);
      ("share", Journal.Bool share);
      ("interval", Journal.Int interval);
      ("vars", Journal.Int (Cnf.Formula.num_vars formula));
      ("clauses", Journal.Int (Cnf.Formula.num_clauses formula));
    ];
  Array.iter
    (fun w ->
      log
        [
          ("event", Journal.String "config");
          ("worker", Journal.Int w.idx);
          ("name", Journal.String w.spec.name);
        ])
    workers;
  let epoch = ref 0 in
  let torn = ref 0 in
  let killed = ref 0 in
  let winner = ref None in
  let depart ?(count_torn = false) w =
    if w.sharing then begin
      w.sharing <- false;
      if count_torn then incr torn
    end
  in
  let handle_payload w payload =
    let len = String.length payload in
    if len >= 2 && payload.[0] = 'X' then begin
      match String.index_opt payload '\n' with
      | None -> depart ~count_torn:true w
      | Some nl -> (
        let header = String.sub payload 2 (nl - 2) in
        let blob = String.sub payload (nl + 1) (len - nl - 1) in
        match (ints_of_string header, Share.decode blob) with
        | Some [ imported; rejected ], Ok b ->
          Queue.add
            (Exports
               {
                 blob;
                 epoch = b.Share.epoch;
                 count = List.length b.Share.clauses;
                 imported;
                 rejected;
               })
            w.inbox
        | _, _ -> depart ~count_torn:true w)
    end
    else if len >= 2 && payload.[0] = 'D' then begin
      match String.split_on_char ' ' (String.sub payload 2 (len - 2)) with
      | [ verdict; epochs; exported; imported; rejected; _conflicts ] -> (
        match
          ( int_of_string_opt epochs,
            int_of_string_opt exported,
            int_of_string_opt imported,
            int_of_string_opt rejected )
        with
        | Some epochs, Some exported, Some imported, Some rejected ->
          Queue.add
            (Done { verdict; epochs; exported; imported; rejected })
            w.inbox
        | _ -> depart ~count_torn:true w)
      | _ -> depart ~count_torn:true w
    end
    else depart ~count_torn:true w
  in
  let drain w =
    let rec frames () =
      match Frame.next w.reader with
      | Some p ->
        handle_payload w p;
        frames ()
      | None -> if Frame.malformed w.reader then depart ~count_torn:true w
    in
    let rec pump () =
      match Frame.read_into w.reader w.up_r with
      | `Data ->
        frames ();
        if w.sharing then pump ()
      | `Blocked | `Eof -> frames ()
    in
    if w.sharing then pump ()
  in
  let service_all () =
    Array.iter
      (fun w ->
        if w.finished = None then
          match Supervisor.service w.sup with
          | Some v ->
            w.finished <- Some v;
            drain w;
            (* A worker that left without a queued message can no
               longer satisfy a barrier. *)
            if Queue.is_empty w.inbox then depart w
          | None -> ())
      workers
  in
  let participants () =
    Array.to_list workers |> List.filter (fun w -> w.sharing)
  in
  let crown w verdict_str =
    winner := Some (w, verdict_str);
    log
      [
        ("event", Journal.String "done");
        ("worker", Journal.Int w.idx);
        ("verdict", Journal.String verdict_str);
        ("epoch", Journal.Int !epoch);
      ]
  in
  let relay parts =
    List.iter
      (fun w ->
        let others =
          List.filter_map
            (fun o ->
              if o.idx = w.idx then None
              else
                match Queue.peek o.inbox with
                | Exports e -> Some e.blob
                | Done _ -> None
                | exception Queue.Empty -> None)
            parts
        in
        try Frame.write w.down_w (Printf.sprintf "I %d\n%s" !epoch (String.concat "" others))
        with Unix.Unix_error _ -> depart w)
      parts
  in
  let rec barriers () =
    match !winner with
    | Some _ -> ()
    | None ->
      let parts = participants () in
      if parts <> [] && List.for_all (fun w -> not (Queue.is_empty w.inbox)) parts
      then begin
        let dones =
          List.filter
            (fun w ->
              match Queue.peek w.inbox with Done _ -> true | _ -> false)
            parts
        in
        let decisive_dones =
          List.filter
            (fun w ->
              match Queue.peek w.inbox with
              | Done d -> decisive d.verdict
              | _ -> false)
            parts
        in
        let record w =
          match Queue.peek w.inbox with
          | Exports e ->
            w.exported <- w.exported + e.count;
            w.imported <- e.imported;
            w.rejected <- e.rejected
          | Done d ->
            w.exported <- d.exported;
            w.imported <- d.imported;
            w.rejected <- d.rejected
        in
        match decisive_dones with
        | w :: _ ->
          (* Lowest worker index among decisive verdicts at this
             barrier: deterministic, not a wall-clock race. The loop
             ends here, so every queued message is recorded once. *)
          List.iter record parts;
          let v = match Queue.peek w.inbox with
            | Done d -> d.verdict
            | Exports _ -> assert false
          in
          crown w v
        | [] ->
          if dones <> [] then begin
            (* Unknown verdicts leave the portfolio; the rest carry on. *)
            List.iter
              (fun w ->
                record w;
                ignore (Queue.pop w.inbox);
                log
                  [
                    ("event", Journal.String "done");
                    ("worker", Journal.Int w.idx);
                    ("verdict", Journal.String "UNKNOWN");
                    ("epoch", Journal.Int !epoch);
                  ];
                depart w)
              dones;
            barriers ()
          end
          else if Fault.fires Fault.Portfolio_worker_kill && List.length parts > 1
          then begin
            (* Kill the highest-index participant mid-exchange: it has
               submitted its epoch and is blocked awaiting imports. *)
            let victim = List.nth parts (List.length parts - 1) in
            (try Unix.kill (Supervisor.pid victim.sup) Sys.sigkill
             with Unix.Unix_error _ -> ());
            incr killed;
            Queue.clear victim.inbox;
            depart victim;
            barriers ()
          end
          else begin
            relay parts;
            log
              ([
                 ("event", Journal.String "epoch");
                 ("epoch", Journal.Int !epoch);
               ]
              @ List.concat_map
                  (fun w ->
                    match Queue.peek w.inbox with
                    | Exports e ->
                      [
                        (Printf.sprintf "w%d_exports" w.idx, Journal.Int e.count);
                        (Printf.sprintf "w%d_imported" w.idx, Journal.Int e.imported);
                        (Printf.sprintf "w%d_rejected" w.idx, Journal.Int e.rejected);
                      ]
                    | Done _ -> [])
                  parts);
            List.iter
              (fun w ->
                record w;
                ignore (Queue.pop w.inbox))
              parts;
            incr epoch;
            barriers ()
          end
      end
  in
  let all_finished () = Array.for_all (fun w -> w.finished <> None) workers in
  (* Solo completions (a worker that dropped out of sharing and solved
     on its own) can win only when no barrier can decide first. *)
  let solo_winner () =
    if !winner <> None then ()
    else
      Array.iter
        (fun w ->
          if !winner = None && not w.sharing && Queue.is_empty w.inbox then
            match w.finished with
            | Some (Supervisor.Completed (Ok payload)) -> (
              match parse_payload payload with
              | Some (v, _, _, _, _, _, _) when decisive v -> crown w v
              | _ -> ())
            | _ -> ())
        workers
  in
  while !winner = None && not (all_finished ()) do
    service_all ();
    let fds =
      Array.to_list workers
      |> List.filter_map (fun w -> if w.sharing then Some w.up_r else None)
    in
    (match Unix.select fds [] [] 0.05 with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          Array.iter (fun w -> if w.up_r = fd then drain w) workers)
        readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    barriers ();
    if participants () = [] then solo_winner ()
  done;
  service_all ();
  Array.iter (fun w -> drain w) workers;
  barriers ();
  solo_winner ();
  (* Cancel everyone still running (never the winner: its result
     payload may still be in flight) and measure how long reaping
     takes. *)
  let t0 = Unix.gettimeofday () in
  let is_winner w =
    match !winner with Some (ww, _) -> ww.idx = w.idx | None -> false
  in
  Array.iter
    (fun w ->
      if w.finished = None && not (is_winner w) then Supervisor.abort w.sup)
    workers;
  Array.iter
    (fun w ->
      if w.finished = None then w.finished <- Some (Supervisor.await w.sup))
    workers;
  let cancel_seconds =
    match !winner with Some _ -> Unix.gettimeofday () -. t0 | None -> 0.0
  in
  Array.iter
    (fun w ->
      close_quietly w.up_r;
      close_quietly w.down_w)
    workers;
  (* The winner's payload (via the supervisor result pipe) carries the
     model or proof and authoritative counters. *)
  let verdict, winner_idx, winner_name =
    match !winner with
    | None -> (Unknown, -1, "none")
    | Some (w, _) -> (
      match w.finished with
      | Some (Supervisor.Completed (Ok payload)) -> (
        match parse_payload payload with
        | Some ("SAT", exported, imported, rejected, _, _, extra) ->
          w.exported <- exported;
          w.imported <- imported;
          w.rejected <- rejected;
          let model = Array.init (String.length extra) (fun i -> extra.[i] = '1') in
          (Sat model, w.idx, w.spec.name)
        | Some ("UNSAT", exported, imported, rejected, _, _, extra) ->
          w.exported <- exported;
          w.imported <- imported;
          w.rejected <- rejected;
          (Unsat (if proof then Some extra else None), w.idx, w.spec.name)
        | _ -> (Unknown, w.idx, w.spec.name))
      | _ -> (Unknown, w.idx, w.spec.name))
  in
  let exported = Array.fold_left (fun acc w -> acc + w.exported) 0 workers in
  let imported = Array.fold_left (fun acc w -> acc + w.imported) 0 workers in
  let rejected = Array.fold_left (fun acc w -> acc + w.rejected) 0 workers in
  log
    [
      ("event", Journal.String "winner");
      ("worker", Journal.Int winner_idx);
      ("name", Journal.String winner_name);
      ( "verdict",
        Journal.String
          (match verdict with
          | Sat _ -> "SAT"
          | Unsat _ -> "UNSAT"
          | Unknown -> "UNKNOWN") );
      ("epochs", Journal.Int !epoch);
      ("exported", Journal.Int exported);
      ("imported", Journal.Int imported);
      ("rejected", Journal.Int rejected);
      ("torn_frames", Journal.Int !torn);
      ("workers_killed", Journal.Int !killed);
    ];
  let journal = List.rev !journal in
  (match journal_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    List.iter
      (fun line ->
        output_string oc line;
        output_char oc '\n')
      journal;
    close_out oc);
  Obs.Metrics.add m_exported exported;
  Obs.Metrics.add m_imported imported;
  Obs.Metrics.add m_rejected rejected;
  Obs.Metrics.add m_epochs !epoch;
  Obs.Metrics.add m_torn !torn;
  Obs.Metrics.add m_killed !killed;
  Obs.Metrics.set g_winner (float_of_int winner_idx);
  if !winner <> None then Obs.Metrics.observe h_cancel cancel_seconds;
  {
    verdict;
    winner = winner_idx;
    winner_name;
    epochs = !epoch;
    exported;
    imported;
    rejected;
    torn_frames = !torn;
    workers_killed = !killed;
    cancel_seconds;
    journal;
  }

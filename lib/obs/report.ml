let schema = "ns.metrics/1"

let histogram_json h =
  let bucket (le, count) =
    Json.Obj
      [
        ( "le",
          if Float.is_finite le then Json.Float le else Json.String "+inf" );
        ("count", Json.Int count);
      ]
  in
  Json.Obj
    [
      ("count", Json.Int (Metrics.hist_count h));
      ("sum", Json.Float (Metrics.hist_sum h));
      ( "buckets",
        Json.List (Array.to_list (Array.map bucket (Metrics.buckets h))) );
    ]

let to_json ?registry ?now () =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let snap = Metrics.snapshot ?registry () in
  let pick f = List.filter_map f snap in
  let counters =
    pick (function
      | name, Metrics.Counter c -> Some (name, Json.Int (Metrics.counter_value c))
      | _ -> None)
  in
  let gauges =
    pick (function
      | name, Metrics.Gauge g -> Some (name, Json.Float (Metrics.gauge_value g))
      | _ -> None)
  in
  let histograms =
    pick (function
      | name, Metrics.Histogram h -> Some (name, histogram_json h)
      | _ -> None)
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("created_unix", Json.Float now);
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let to_string ?registry ?now () = Json.to_string (to_json ?registry ?now ())

let write ?registry ?now path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ?registry ?now ());
      output_char oc '\n')

(* --- schema validation ----------------------------------------------- *)

let ( let* ) = Result.bind

let require msg = function Some x -> Ok x | None -> Error msg

let check_all f xs =
  List.fold_left
    (fun acc x ->
      let* () = acc in
      f x)
    (Ok ()) xs

let obj_members msg j =
  match j with Json.Obj kvs -> Ok kvs | _ -> Error msg

let validate_bucket name j =
  let* le =
    require
      (Printf.sprintf "histogram %s: bucket missing 'le'" name)
      (Json.member "le" j)
  in
  let* () =
    match le with
    | Json.Float _ | Json.Int _ | Json.String "+inf" -> Ok ()
    | _ -> Error (Printf.sprintf "histogram %s: bad bucket 'le'" name)
  in
  let* _count =
    require
      (Printf.sprintf "histogram %s: bucket missing integer 'count'" name)
      (Option.bind (Json.member "count" j) Json.to_int_opt)
  in
  Ok ()

let validate_histogram (name, j) =
  let* _count =
    require
      (Printf.sprintf "histogram %s: missing integer 'count'" name)
      (Option.bind (Json.member "count" j) Json.to_int_opt)
  in
  let* _sum =
    require
      (Printf.sprintf "histogram %s: missing number 'sum'" name)
      (Option.bind (Json.member "sum" j) Json.to_float_opt)
  in
  let* bs =
    require
      (Printf.sprintf "histogram %s: missing 'buckets' array" name)
      (Option.bind (Json.member "buckets" j) Json.to_list_opt)
  in
  check_all (validate_bucket name) bs

let validate j =
  let* s =
    require "missing 'schema'"
      (Option.bind (Json.member "schema" j) Json.to_string_opt)
  in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" s schema)
  in
  let* _ =
    require "missing number 'created_unix'"
      (Option.bind (Json.member "created_unix" j) Json.to_float_opt)
  in
  let* counters =
    require "missing 'counters' object" (Json.member "counters" j)
  in
  let* counters = obj_members "'counters' is not an object" counters in
  let* () =
    check_all
      (fun (name, v) ->
        match Json.to_int_opt v with
        | Some _ -> Ok ()
        | None -> Error (Printf.sprintf "counter %s: not an integer" name))
      counters
  in
  let* gauges = require "missing 'gauges' object" (Json.member "gauges" j) in
  let* gauges = obj_members "'gauges' is not an object" gauges in
  let* () =
    check_all
      (fun (name, v) ->
        match Json.to_float_opt v with
        | Some _ -> Ok ()
        | None -> Error (Printf.sprintf "gauge %s: not a number" name))
      gauges
  in
  let* hists =
    require "missing 'histograms' object" (Json.member "histograms" j)
  in
  let* hists = obj_members "'histograms' is not an object" hists in
  check_all validate_histogram hists

(** Stable-schema JSON snapshot of a metric registry.

    Schema ["ns.metrics/1"]:
    {v
    { "schema": "ns.metrics/1",
      "created_unix": <float>,
      "counters":   { "<name>": <int>, … },
      "gauges":     { "<name>": <float>, … },
      "histograms": { "<name>":
          { "count": <int>, "sum": <float>,
            "buckets": [ {"le": <float>|"+inf", "count": <int>}, … ] },
        … } }
    v}

    Names are sorted, every histogram bucket is present (zero counts
    included), and floats render canonically, so two snapshots of the
    same state are byte-identical — the property the golden test and
    CI artifact diffing rely on. *)

val to_json : ?registry:Metrics.registry -> ?now:float -> unit -> Json.t
(** [now] defaults to [Unix.gettimeofday ()]; pass a fixed value for
    reproducible output. *)

val to_string : ?registry:Metrics.registry -> ?now:float -> unit -> string

val write : ?registry:Metrics.registry -> ?now:float -> string -> unit
(** Write the snapshot (plus a trailing newline) to a file. *)

val validate : Json.t -> (unit, string) result
(** Check a document against the ["ns.metrics/1"] schema. *)

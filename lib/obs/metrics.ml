type counter = { mutable count : int }

type gauge = { cell : float array (* length 1: unboxed float store *) }

type histogram = {
  bounds : float array; (* strictly increasing upper bounds *)
  bucket_counts : int array; (* length bounds + 1; last = overflow *)
  sum : float array; (* length 1 *)
  mutable observations : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry = { table : (string, metric) Hashtbl.t }

let create_registry () = { table = Hashtbl.create 64 }
let default_registry = create_registry ()

let register ?(registry = default_registry) name make describe =
  match Hashtbl.find_opt registry.table name with
  | None ->
    let m = make () in
    Hashtbl.replace registry.table name m;
    m
  | Some existing -> describe existing

let kind_error name wanted =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S already registered as a different %s" name
       wanted)

(* --- counters -------------------------------------------------------- *)

let counter ?registry name =
  match
    register ?registry name
      (fun () -> Counter { count = 0 })
      (function Counter _ as m -> m | _ -> kind_error name "kind (wanted counter)")
  with
  | Counter c -> c
  | _ -> assert false

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg "Obs.Metrics.add: negative delta";
  c.count <- c.count + n

let counter_value c = c.count

(* --- gauges ---------------------------------------------------------- *)

let gauge ?registry name =
  match
    register ?registry name
      (fun () -> Gauge { cell = [| 0.0 |] })
      (function Gauge _ as m -> m | _ -> kind_error name "kind (wanted gauge)")
  with
  | Gauge g -> g
  | _ -> assert false

let set g v = g.cell.(0) <- v
let gauge_value g = g.cell.(0)

(* --- histograms ------------------------------------------------------ *)

let default_bounds =
  (* 1–2–5 per decade over [1e-9, 1e3]. Spelled via powers of ten so
     every bound is the closest float to its decimal form. *)
  let steps = [ 1.0; 2.0; 5.0 ] in
  let decades = List.init 12 (fun i -> i - 9) in
  let ladder =
    List.concat_map
      (fun d -> List.map (fun s -> s *. (10.0 ** float_of_int d)) steps)
      decades
  in
  Array.of_list (ladder @ [ 1e3 ])

let check_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Obs.Metrics.histogram: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if not (bounds.(i) > bounds.(i - 1)) then
      invalid_arg "Obs.Metrics.histogram: bounds must be strictly increasing"
  done

let histogram ?registry ?(bounds = default_bounds) name =
  check_bounds bounds;
  match
    register ?registry name
      (fun () ->
        Histogram
          {
            bounds = Array.copy bounds;
            bucket_counts = Array.make (Array.length bounds + 1) 0;
            sum = [| 0.0 |];
            observations = 0;
          })
      (function
        | Histogram h as m ->
          if h.bounds <> bounds then
            invalid_arg
              (Printf.sprintf
                 "Obs.Metrics: histogram %S already registered with different \
                  bounds"
                 name);
          m
        | _ -> kind_error name "kind (wanted histogram)")
  with
  | Histogram h -> h
  | _ -> assert false

(* Index of the first bound >= v, or |bounds| (overflow) when v is
   above them all. Binary search over the preallocated array: no
   allocation on the observe path. *)
let bucket_index bounds v =
  let lo = ref 0 and hi = ref (Array.length bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  if not (Float.is_nan v) then begin
    let i = bucket_index h.bounds v in
    h.bucket_counts.(i) <- h.bucket_counts.(i) + 1;
    h.sum.(0) <- h.sum.(0) +. v;
    h.observations <- h.observations + 1
  end

let time h f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  observe h (Float.max 0.0 (Unix.gettimeofday () -. t0));
  r

let hist_count h = h.observations
let hist_sum h = h.sum.(0)

let buckets h =
  Array.init
    (Array.length h.bucket_counts)
    (fun i ->
      let le =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      (le, h.bucket_counts.(i)))

let merge ~into src =
  if into.bounds <> src.bounds then
    invalid_arg "Obs.Metrics.merge: mismatched bucket bounds";
  Array.iteri
    (fun i c -> into.bucket_counts.(i) <- into.bucket_counts.(i) + c)
    src.bucket_counts;
  into.sum.(0) <- into.sum.(0) +. src.sum.(0);
  into.observations <- into.observations + src.observations

(* --- registry-wide --------------------------------------------------- *)

let snapshot ?(registry = default_registry) () =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset ?(registry = default_registry) () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.cell.(0) <- 0.0
      | Histogram h ->
        Array.fill h.bucket_counts 0 (Array.length h.bucket_counts) 0;
        h.sum.(0) <- 0.0;
        h.observations <- 0)
    registry.table

let find ?(registry = default_registry) name =
  Hashtbl.find_opt registry.table name

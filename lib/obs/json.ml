type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* One canonical float format: shortest-ish, round-trippable, and the
   same bytes every run (golden files depend on this). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        render buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        render buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  render buf t;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          go ()
        | 'b' ->
          Buffer.add_char buf '\b';
          go ()
        | 'f' ->
          Buffer.add_char buf '\012';
          go ()
        | 'n' ->
          Buffer.add_char buf '\n';
          go ()
        | 'r' ->
          Buffer.add_char buf '\r';
          go ()
        | 't' ->
          Buffer.add_char buf '\t';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail "bad \\u escape"
          in
          (match Uchar.of_int code with
          | u -> Buffer.add_utf_8_uchar buf u
          | exception Invalid_argument _ -> fail "bad \\u code point");
          go ()
        | _ -> fail "bad escape")
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let floaty =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if floaty then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None

type sink =
  | File of out_channel
  | Sink_buffer of Buffer.t

type state = {
  mutable sink : sink option;
  mutable epoch : float; (* clock value when the sink was installed *)
  mutable next_id : int;
  mutable stack : int list; (* open span ids, innermost first *)
}

let state = { sink = None; epoch = 0.0; next_id = 0; stack = [] }

(* Monotonized wall clock, independent of Runtime.Clock so the obs
   layer stays at the bottom of the dependency order. *)
let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let enabled () = state.sink <> None

let depth () = List.length state.stack

let emit line =
  match state.sink with
  | None -> ()
  | Some (File oc) ->
    output_string oc line;
    output_char oc '\n'
  | Some (Sink_buffer buf) ->
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'

let flush_sink () =
  match state.sink with Some (File oc) -> flush oc | _ -> ()

let disable () =
  (match state.sink with
  | Some (File oc) ->
    flush oc;
    close_out_noerr oc
  | Some (Sink_buffer _) | None -> ());
  state.sink <- None;
  state.stack <- []

let install sink =
  disable ();
  state.sink <- Some sink;
  state.epoch <- now ();
  state.next_id <- 0;
  state.stack <- []

let at_exit_registered = ref false

let register_at_exit () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () -> match state.sink with
      | Some (File _) -> disable ()
      | Some (Sink_buffer _) | None -> ())
  end

let enable_file path =
  install (File (open_out path));
  register_at_exit ()

let enable_buffer buf = install (Sink_buffer buf)

let install_from_env () =
  match Sys.getenv_opt "NS_TRACE" with
  | Some path when path <> "" -> enable_file path
  | Some _ | None -> ()

let span_line ~name ~id ~parent ~depth ~start ~dur ~attrs =
  let base =
    [
      ("name", Json.String name);
      ("id", Json.Int id);
      ( "parent",
        match parent with None -> Json.Null | Some p -> Json.Int p );
      ("depth", Json.Int depth);
      ("start", Json.Float start);
      ("dur", Json.Float dur);
      ("pid", Json.Int (Unix.getpid ()));
    ]
  in
  Json.to_string (Json.Obj (if attrs = [] then base else base @ attrs))

let with_span ?(attrs = []) name f =
  match state.sink with
  | None -> f ()
  | Some _ ->
    let id = state.next_id in
    state.next_id <- id + 1;
    let parent = match state.stack with [] -> None | p :: _ -> Some p in
    let d = List.length state.stack in
    state.stack <- id :: state.stack;
    let t0 = now () in
    let finish () =
      (match state.stack with
      | top :: rest when top = id -> state.stack <- rest
      | _ -> () (* sink swapped mid-span: drop silently *));
      let t1 = now () in
      emit
        (span_line ~name ~id ~parent ~depth:d
           ~start:(t0 -. state.epoch) ~dur:(t1 -. t0) ~attrs);
      if d = 0 then flush_sink ()
    in
    Fun.protect ~finally:finish f

let schema = "ns.bench/1"

type kernel = {
  name : string;
  ns_per_run : float;
}

type t = {
  date : string;
  fast : bool;
  kernels : kernel list;
  metrics : Json.t;
}

let make ~date ~fast ~kernels ~metrics = { date; fast; kernels; metrics }

let kernel_json k =
  Json.Obj [ ("name", Json.String k.name); ("ns_per_run", Json.Float k.ns_per_run) ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("date", Json.String t.date);
      ("fast", Json.Bool t.fast);
      ("kernels", Json.List (List.map kernel_json t.kernels));
      ("metrics", t.metrics);
    ]

let ( let* ) = Result.bind

let require msg = function Some x -> Ok x | None -> Error msg

let kernel_of_json j =
  let* name =
    require "kernel missing string 'name'"
      (Option.bind (Json.member "name" j) Json.to_string_opt)
  in
  let* ns_per_run =
    require
      (Printf.sprintf "kernel %s: missing number 'ns_per_run'" name)
      (Option.bind (Json.member "ns_per_run" j) Json.to_float_opt)
  in
  Ok { name; ns_per_run }

let of_json j =
  let* s =
    require "missing 'schema'"
      (Option.bind (Json.member "schema" j) Json.to_string_opt)
  in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" s schema)
  in
  let* date =
    require "missing string 'date'"
      (Option.bind (Json.member "date" j) Json.to_string_opt)
  in
  let* fast =
    require "missing bool 'fast'"
      (Option.bind (Json.member "fast" j) Json.to_bool_opt)
  in
  let* kernel_list =
    require "missing 'kernels' array"
      (Option.bind (Json.member "kernels" j) Json.to_list_opt)
  in
  let* kernels =
    List.fold_left
      (fun acc k ->
        let* acc = acc in
        let* k = kernel_of_json k in
        Ok (k :: acc))
      (Ok []) kernel_list
  in
  let* metrics = require "missing 'metrics' object" (Json.member "metrics" j) in
  Ok { date; fast; kernels = List.rev kernels; metrics }

let validate j =
  let* t = of_json j in
  Report.validate t.metrics

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let read_file path =
  let* text =
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> Ok text
    | exception Sys_error msg -> Error msg
  in
  let* j = Json.parse text in
  of_json j

(* --- regression gate -------------------------------------------------- *)

type comparison_entry = {
  kernel : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;
  normalized_ratio : float;
  regressed : bool;
}

type comparison = {
  entries : comparison_entry list;
  missing : string list;
  ok : bool;
}

let median xs =
  match List.sort compare xs with
  | [] -> 1.0
  | sorted ->
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    if n mod 2 = 1 then nth (n / 2)
    else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let compare_kernels ?(tolerance = 0.25) ?(absolute = false) ~baseline ~current
    () =
  let current_by_name =
    List.map (fun k -> (k.name, k.ns_per_run)) current.kernels
  in
  let paired, missing =
    List.fold_left
      (fun (paired, missing) b ->
        match List.assoc_opt b.name current_by_name with
        | Some cur when b.ns_per_run > 0.0 && cur > 0.0 ->
          ((b.name, b.ns_per_run, cur) :: paired, missing)
        | Some _ -> (paired, missing) (* degenerate estimate: skip *)
        | None -> (paired, b.name :: missing))
      ([], []) baseline.kernels
  in
  let paired = List.rev paired and missing = List.rev missing in
  let ratios = List.map (fun (_, b, c) -> c /. b) paired in
  let med = median ratios in
  let entries =
    List.map
      (fun (kernel, baseline_ns, current_ns) ->
        let ratio = current_ns /. baseline_ns in
        let normalized_ratio = if med > 0.0 then ratio /. med else ratio in
        let gated = if absolute then ratio else normalized_ratio in
        {
          kernel;
          baseline_ns;
          current_ns;
          ratio;
          normalized_ratio;
          regressed = gated > 1.0 +. tolerance;
        })
      paired
  in
  {
    entries;
    missing;
    ok = missing = [] && List.for_all (fun e -> not e.regressed) entries;
  }

let pp_comparison ppf c =
  Format.fprintf ppf "@[<v>%-48s %12s %12s %7s %7s  %s@," "kernel"
    "baseline ns" "current ns" "ratio" "norm" "verdict";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-48s %12.0f %12.0f %7.2f %7.2f  %s@," e.kernel
        e.baseline_ns e.current_ns e.ratio e.normalized_ratio
        (if e.regressed then "REGRESSED" else "ok"))
    c.entries;
  List.iter
    (fun name -> Format.fprintf ppf "%-48s missing from current report@," name)
    c.missing;
  Format.fprintf ppf "%s@]" (if c.ok then "PASS" else "FAIL")

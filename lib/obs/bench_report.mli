(** Machine-readable benchmark reports and the perf-regression gate.

    Schema ["ns.bench/1"]:
    {v
    { "schema": "ns.bench/1",
      "date": "YYYY-MM-DD",
      "fast": <bool>,
      "kernels": [ {"name": <string>, "ns_per_run": <float>}, … ],
      "metrics": <ns.metrics/1 report> }
    v}

    [bench/main.ml --json] emits these; [bin/benchdiff.exe] compares a
    current report against the checked-in [bench/baseline.json] and
    fails CI on a regression. *)

type kernel = {
  name : string;
  ns_per_run : float;  (** OLS estimate from bechamel. *)
}

type t = {
  date : string;
  fast : bool;
  kernels : kernel list;
  metrics : Json.t;  (** An ["ns.metrics/1"] document. *)
}

val make : date:string -> fast:bool -> kernels:kernel list -> metrics:Json.t -> t
val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val validate : Json.t -> (unit, string) result
(** Full check including the embedded metrics report's schema. *)

val write_file : string -> t -> unit
val read_file : string -> (t, string) result

(** {1 Regression gate} *)

type comparison_entry = {
  kernel : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;  (** current / baseline. *)
  normalized_ratio : float;
      (** [ratio] divided by the median ratio across kernels — cancels
          uniform machine-speed differences between the baseline host
          and the CI runner, so only {e relative} regressions (one
          kernel slowing down against the others) trip the gate. *)
  regressed : bool;
}

type comparison = {
  entries : comparison_entry list;
  missing : string list;  (** Baseline kernels absent from current. *)
  ok : bool;  (** No regression and nothing missing. *)
}

val compare_kernels :
  ?tolerance:float -> ?absolute:bool -> baseline:t -> current:t -> unit ->
  comparison
(** [tolerance] defaults to [0.25] (25%). With [absolute:true] the raw
    [ratio] is gated instead of [normalized_ratio] — meaningful only
    when baseline and current ran on the same hardware. *)

val pp_comparison : Format.formatter -> comparison -> unit

(** Process-wide metric registry: counters, gauges, and log-bucketed
    histograms.

    Handles are registered once (typically at module initialisation)
    and then mutated in place, so the hot-path operations — {!incr},
    {!add}, {!set}, {!observe} — allocate nothing: a counter bump is a
    single mutable-field store, a histogram observation is a binary
    search over a preallocated bounds array plus two array stores.

    Registering the same name twice returns the existing handle; the
    name is the identity. Registering a name as two different metric
    kinds (or a histogram with different bounds) raises
    [Invalid_argument] — silently shadowing a metric would corrupt
    every report that mentions it.

    All functions default to a single process-wide registry; tests can
    pass their own {!registry} to stay independent of whatever the
    linked libraries registered at startup. *)

type registry

val default_registry : registry
val create_registry : unit -> registry

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : ?registry:registry -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
(** Negative deltas raise [Invalid_argument]: counters only go up. *)

val counter_value : counter -> int

(** {1 Gauges} — last-write-wins floats (queue depths, sizes). *)

type gauge

val gauge : ?registry:registry -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} — log-bucketed distributions. *)

type histogram

val default_bounds : float array
(** A 1–2–5 ladder per decade from [1e-9] to [1e3] (37 upper bounds),
    sized for wall-clock seconds from nanoseconds to ~17 minutes.
    Values above the last bound land in an implicit overflow bucket. *)

val histogram : ?registry:registry -> ?bounds:float array -> string -> histogram
(** [bounds] must be strictly increasing and non-empty. *)

val observe : histogram -> float -> unit
(** Values ≤ the first bound count in bucket 0; NaN is dropped. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration in seconds.
    Re-raises without observing if the thunk raises. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val buckets : histogram -> (float * int) array
(** [(upper_bound, count)] pairs; the final pair's bound is
    [infinity] (the overflow bucket). Counts are per-bucket, not
    cumulative. *)

val merge : into:histogram -> histogram -> unit
(** Add the source's bucket counts/sum into [into]. Raises
    [Invalid_argument] when the bucket bounds differ. *)

(** {1 Registry-wide operations} *)

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

val snapshot : ?registry:registry -> unit -> (string * metric) list
(** All registered metrics sorted by name. *)

val reset : ?registry:registry -> unit -> unit
(** Zero every value; registrations (and handles) stay valid. *)

val find : ?registry:registry -> string -> metric option

(** Minimal JSON tree with a deterministic printer.

    The observability layer emits machine-readable artifacts (metric
    reports, bench results, trace spans) whose bytes must be stable
    across runs for golden tests and CI diffing, so the printer
    guarantees: object keys in the order given by the caller, floats
    through one canonical format, no whitespace variation. The parser
    accepts standard JSON (objects, arrays, strings with escapes,
    numbers, booleans, null). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Non-finite floats print as [null]. *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering, no trailing newline. *)

val parse : string -> (t, string) result
(** Parse one JSON document; [Error] carries a position-tagged
    message. Numbers without ['.'], ['e'] or ['E'] that fit an OCaml
    [int] parse as [Int], everything else as [Float]. *)

(** {1 Accessors} — [None] on kind mismatch or missing member. *)

val member : string -> t -> t option
val to_float_opt : t -> float option
(** Accepts [Int] and [Float]. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

(** Monotonic-clock span tracing with JSONL export.

    Spans nest: {!with_span} pushes the span onto a per-process stack,
    runs the thunk, and on exit (normal or exceptional) emits one JSON
    line [{"name":…,"id":…,"parent":…,"depth":…,"start":…,"dur":…,
    "pid":…}] to the configured sink. [start] is seconds since the
    sink was installed, [dur] is the span's wall time, both read from
    a monotonized clock; [parent] is [null] for root spans. Lines are
    emitted at span {e end}, so a parent appears after its children —
    consumers reconstruct the tree from [id]/[parent].

    Tracing is off by default and {!with_span} then costs one boolean
    load plus a closure call, so instrumented hot paths stay cheap.
    Enable it programmatically ({!enable_file}) or through the
    [NS_TRACE=path] environment switch ({!install_from_env}, called by
    every binary at startup). Forked workers inherit the sink; each
    line carries the writer's [pid] so a supervised campaign's spans
    remain attributable. *)

val enabled : unit -> bool

val with_span :
  ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** When tracing is disabled this is exactly [f ()]. *)

val enable_file : string -> unit
(** Open (truncate) [path] and start emitting spans. Registers an
    [at_exit] flush/close. *)

val enable_buffer : Buffer.t -> unit
(** In-memory sink for tests. *)

val disable : unit -> unit
(** Flush, close a file sink, and stop emitting. Idempotent. *)

val install_from_env : unit -> unit
(** [NS_TRACE=path] in the environment enables {!enable_file}[ path];
    unset or empty leaves tracing off. *)

val depth : unit -> int
(** Current nesting depth (0 outside any span) — exposed for tests. *)

(** Crash-durable incremental solve sessions.

    The in-memory session table of ns-serve, made durable with a
    write-ahead log ({!Runtime.Wal}): every mutating operation is
    appended (and fsynced, per policy) to the WAL {e before} it is
    executed, so an acknowledged operation survives any crash. On
    {!create} the store rebuilds itself from the newest snapshot plus
    segment replay — replayed operations re-execute on the
    deterministic solver, so a recovered session answers exactly like
    one that was never interrupted.

    One caveat scopes that equivalence: snapshots persist each
    session's clauses but not solver-internal search state (saved
    phases, activities, learned clauses). Replay from the log's
    genesis reproduces replies bit-for-bit; replay {e on top of a
    snapshot} regenerates post-snapshot replies on a
    fresh-with-clauses solver, so a keyed retry of such an op is
    answered with the same {e verdict} but possibly a different
    (equally valid) SAT model or unsat core. Replies cached before
    the snapshot are carried through it verbatim.

    Client retries are made exactly-once by an idempotency-key dedup
    cache: a request whose [key] was already executed returns the
    cached reply without touching the solver. The cache is rebuilt
    during replay (replayed executions regenerate their replies) and
    carried through snapshots, so a retry straddling a crash still
    deduplicates.

    Sessions are bounded two ways: [max_sessions] caps the table
    (further [New] ops are refused), and [session_ttl] lets
    {!evict_idle} reclaim sessions idle longer than the TTL. Evictions
    are WAL-logged so a recovered server does not resurrect them. *)

type op =
  | New of int  (** Create (or replace) a session with N initial vars. *)
  | New_var  (** Introduce one fresh variable. *)
  | Add of string  (** Add a clause, DIMACS-style literals ("1 -2 0"). *)
  | Solve of string  (** Solve under assumption literals ("" = none). *)
  | Close  (** Client-requested teardown. *)
  | Evict  (** Internal TTL/cap eviction (still WAL-logged). *)

type config = {
  wal_dir : string option;  (** [None] = volatile sessions (PR 7 mode). *)
  fsync : Runtime.Wal.fsync_policy;
  segment_bytes : int;
  snapshot_every : int;  (** WAL appends between snapshots; 0 = never. *)
  max_sessions : int;  (** 0 = unbounded. *)
  session_ttl : float;  (** Idle seconds before {!evict_idle} reclaims; 0 = never. *)
  dedup_cap : int;  (** Retained idempotency keys (FIFO). *)
}

val default_config : config
(** Volatile, per-record fsync, snapshot every 256 appends, 1024
    sessions, TTL off, 4096 dedup keys. *)

type recovery_stats = {
  sessions : int;  (** Live sessions after recovery. *)
  replayed : int;  (** WAL records re-executed beyond the snapshot. *)
  from_snapshot : bool;
  truncated_bytes : int;  (** Torn-tail bytes discarded on open. *)
  corrupt_snapshots : int;
  restore_errors : int;
      (** Snapshot entries that failed to restore (each degrades to
          one lost session rather than a failed [create]). *)
}

type t

val create : config -> (t * recovery_stats, Runtime.Error.t) result
(** Open the store, running WAL recovery when [wal_dir] is set. *)

type outcome = {
  reply : (Runtime.Journal.record, string) result;
      (** Response fields to merge into the wire reply, or a
          client-facing error message. *)
  replayed : bool;  (** Served from the idempotency dedup cache. *)
}

val apply : t -> ?key:string -> sid:string -> op -> outcome
(** Execute one operation. Ordering guarantees the durability
    contract: dedup-cache lookup, cheap validation (unknown sid,
    session-table cap), WAL append + fsync, then execution. A WAL
    failure returns an error {e before} any state changes, so the
    client can retry with the same [key]. *)

val info : t -> string -> (int * int) option
(** [(num_vars, clauses added)] for a live session — the loadtest's
    lost-op detector. Read-only, never logged. *)

val session_count : t -> int

val evict_idle : t -> int
(** Evict (and WAL-log) sessions idle longer than [session_ttl];
    returns how many. No-op when the TTL is 0. *)

val evictions : t -> int
(** Total TTL evictions since [create]. *)

val snapshot_failures : t -> int
(** Snapshot attempts that failed (the op that triggered them still
    succeeded — segments alone carry full durability). *)

val snapshot_now : t -> (unit, Runtime.Error.t) result
(** Force a snapshot + compaction immediately. *)

val flush : t -> (unit, Runtime.Error.t) result
(** Fsync WAL appends that the group-commit policy has buffered past
    its interval. Appends only sync opportunistically when more
    traffic arrives, so the serving loop must call this on its tick to
    bound the durability window across traffic pauses. No-op for
    volatile stores and under per-record fsync. *)

val close : t -> unit
(** Sync and close the WAL. The in-memory table remains usable but no
    longer durable; meant for process shutdown. *)

(** {1 Wire-format helpers} (shared with bin/serve.ml) *)

val lits_of_string : string -> Cnf.Lit.t list
(** Whitespace-separated DIMACS literals (newlines and tabs count as
    separators); zeros and junk tokens dropped. *)

val model_to_string : bool array -> string
val verdict_name : Cdcl.Solver.result -> string

(* Durable session table: WAL-before-execute, replay-on-open.

   Op ordering inside [apply] is the whole durability story:

     1. dedup-cache lookup  (client retry -> cached reply, no re-execute)
     2. cheap validation    (unknown sid, table cap -> no WAL traffic)
     3. WAL append + fsync  (fails -> error reply, state untouched)
     4. execute on the in-memory solver
     5. cache the reply under the idempotency key
     6. maybe snapshot      (failure tolerated: segments carry durability)

   Logging the *operation* (not its result) before executing keeps
   crash-recovery trivial: replay just re-executes the ops in LSN order
   on the deterministic solver, which also regenerates the dedup
   cache's replies. A crash between append and ack re-executes the op
   on recovery while the client never saw an ack — its retry hits the
   rebuilt dedup cache and is answered exactly once. *)

module Journal = Runtime.Journal
module Wal = Runtime.Wal
module Error = Runtime.Error

(* --- wire helpers (shared with bin/serve.ml) --------------------------- *)

(* Clause / assumption strings may arrive with embedded newlines or
   tabs (legal through the wire protocol's JSON escapes); normalising
   them to single spaces gives every consumer — the solver parser, WAL
   records, snapshot fields — one canonical form. *)
let normalize_ws s =
  String.map (function ' ' | '\t' | '\n' | '\r' -> ' ' | c -> c) s

let lits_of_string s =
  String.split_on_char ' ' (String.trim (normalize_ws s))
  |> List.filter_map (fun tok ->
         match int_of_string_opt (String.trim tok) with
         | None | Some 0 -> None
         | Some d -> Some (Cnf.Lit.of_dimacs d))

let model_to_string m =
  let b = Buffer.create 64 in
  for v = 1 to Array.length m - 1 do
    if v > 1 then Buffer.add_char b ' ';
    Buffer.add_string b (string_of_int (if m.(v) then v else -v))
  done;
  Buffer.contents b

let verdict_name = function
  | Cdcl.Solver.Sat _ -> "sat"
  | Cdcl.Solver.Unsat -> "unsat"
  | Cdcl.Solver.Unknown -> "unknown"

(* --- types -------------------------------------------------------------- *)

type op =
  | New of int
  | New_var
  | Add of string
  | Solve of string
  | Close
  | Evict

type config = {
  wal_dir : string option;
  fsync : Wal.fsync_policy;
  segment_bytes : int;
  snapshot_every : int;
  max_sessions : int;
  session_ttl : float;
  dedup_cap : int;
}

let default_config =
  {
    wal_dir = None;
    fsync = Wal.Per_record;
    segment_bytes = 4 * 1024 * 1024;
    snapshot_every = 256;
    max_sessions = 1024;
    session_ttl = 0.0;
    dedup_cap = 4096;
  }

type recovery_stats = {
  sessions : int;
  replayed : int;
  from_snapshot : bool;
  truncated_bytes : int;
  corrupt_snapshots : int;
  restore_errors : int;
}

type session = {
  solver : Cdcl.Solver.t;
  mutable clauses : string list; (* newest first *)
  mutable clause_count : int;
  mutable last_used : float;
}

type t = {
  cfg : config;
  sessions : (string, session) Hashtbl.t;
  dedup : (string, Journal.record) Hashtbl.t;
  dedup_order : string Queue.t;
  wal : Wal.t option;
  mutable replaying : bool;
  mutable appends_since_snapshot : int;
  mutable snapshot_failures : int;
  mutable evictions : int;
}

type outcome = {
  reply : (Journal.record, string) result;
  replayed : bool;
}

(* --- op <-> WAL record -------------------------------------------------- *)

let op_to_record ?key ~sid op =
  let base =
    match op with
    | New vars -> [ ("sop", Journal.String "new"); ("vars", Journal.Int vars) ]
    | New_var -> [ ("sop", Journal.String "new_var") ]
    | Add clause ->
      [ ("sop", Journal.String "add"); ("clause", Journal.String clause) ]
    | Solve assumptions ->
      [
        ("sop", Journal.String "solve");
        ("assumptions", Journal.String assumptions);
      ]
    | Close -> [ ("sop", Journal.String "close") ]
    | Evict -> [ ("sop", Journal.String "evict") ]
  in
  base
  @ [ ("sid", Journal.String sid) ]
  @ match key with Some k -> [ ("key", Journal.String k) ] | None -> []

let op_of_record fields =
  match Journal.find_string fields "sop" with
  | Some "new" ->
    Some (New (Option.value (Journal.find_int fields "vars") ~default:0))
  | Some "new_var" -> Some New_var
  | Some "add" ->
    Some (Add (Option.value (Journal.find_string fields "clause") ~default:""))
  | Some "solve" ->
    Some
      (Solve
         (Option.value (Journal.find_string fields "assumptions") ~default:""))
  | Some "close" -> Some Close
  | Some "evict" -> Some Evict
  | _ -> None

(* --- dedup cache -------------------------------------------------------- *)

let cache_reply t key record =
  if not (Hashtbl.mem t.dedup key) then begin
    Hashtbl.replace t.dedup key record;
    Queue.push key t.dedup_order;
    while Queue.length t.dedup_order > t.cfg.dedup_cap do
      let old = Queue.pop t.dedup_order in
      Hashtbl.remove t.dedup old
    done
  end

(* --- execution ---------------------------------------------------------- *)

let fresh_session vars =
  {
    solver = Cdcl.Solver.create (Cnf.Formula.create ~num_vars:vars [||]);
    clauses = [];
    clause_count = 0;
    last_used = Unix.gettimeofday ();
  }

(* Auto-introduce the variables the clause mentions, then add it.
   Shared by live Adds and snapshot restore so both accept exactly the
   same inputs — restore must never be stricter than the path that
   acked the clause. *)
let add_clause_to_session s clause =
  let lits = lits_of_string clause in
  List.iter
    (fun l ->
      while Cnf.Lit.var l > Cdcl.Solver.num_vars s.solver do
        ignore (Cdcl.Solver.new_var s.solver)
      done)
    lits;
  Cdcl.Solver.add_clause s.solver lits;
  s.clauses <- clause :: s.clauses;
  s.clause_count <- s.clause_count + 1

let execute t ~sid op : (Journal.record, string) result =
  let with_session f =
    match Hashtbl.find_opt t.sessions sid with
    | None -> Error (Printf.sprintf "session: unknown sid %s" sid)
    | Some s ->
      s.last_used <- Unix.gettimeofday ();
      f s
  in
  let protected f =
    match Error.protect ~context:"session-store" f with
    | Ok r -> Ok r
    | Error e -> Error (Error.to_string e)
  in
  match op with
  | New vars ->
    Hashtbl.replace t.sessions sid (fresh_session (max 0 vars));
    Ok [ ("sid", Journal.String sid) ]
  | Close | Evict ->
    Hashtbl.remove t.sessions sid;
    Ok []
  | New_var ->
    with_session (fun s ->
        protected (fun () ->
            [ ("var", Journal.Int (Cdcl.Solver.new_var s.solver)) ]))
  | Add clause ->
    with_session (fun s ->
        protected (fun () ->
            add_clause_to_session s clause;
            [ ("vars", Journal.Int (Cdcl.Solver.num_vars s.solver)) ]))
  | Solve assumptions ->
    with_session (fun s ->
        (* Unlike Add, assumptions never introduce variables: an
           out-of-range literal is a client error, answered cleanly
           instead of leaking a solver exception. *)
        let lits = lits_of_string assumptions in
        match
          List.find_opt
            (fun l -> Cnf.Lit.var l > Cdcl.Solver.num_vars s.solver)
            lits
        with
        | Some l ->
          Error
            (Printf.sprintf "solve: assumption %d names an unknown variable"
               (Cnf.Lit.to_dimacs l))
        | None ->
        protected (fun () ->
            let result =
              if lits = [] then Cdcl.Solver.solve s.solver
              else Cdcl.Solver.solve_with_assumptions s.solver lits
            in
            let core =
              match Cdcl.Solver.unsat_core s.solver with
              | None -> Journal.Null
              | Some core ->
                Journal.String
                  (String.concat " "
                     (List.map
                        (fun l -> string_of_int (Cnf.Lit.to_dimacs l))
                        core))
            in
            [
              ("verdict", Journal.String (verdict_name result));
              ( "model",
                match result with
                | Cdcl.Solver.Sat m -> Journal.String (model_to_string m)
                | _ -> Journal.Null );
              ("core", core);
            ]))

(* --- snapshots ---------------------------------------------------------- *)

let snapshot_payload t =
  let buf = Buffer.create 1024 in
  let line record =
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf (Journal.encode record)
  in
  Hashtbl.iter
    (fun sid s ->
      (* One Journal field per clause ("c0".."cN-1" plus the count):
         joining the clause strings with a separator would be ambiguous
         for any clause that itself contains the separator, and a
         restore that mis-splits silently diverges from the acked
         state. *)
      let clauses = List.rev s.clauses in
      line
        ([
           ("k", Journal.String "sess");
           ("sid", Journal.String sid);
           ("vars", Journal.Int (Cdcl.Solver.num_vars s.solver));
           ("n", Journal.Int (List.length clauses));
         ]
        @ List.mapi
            (fun i c -> (Printf.sprintf "c%d" i, Journal.String c))
            clauses))
    t.sessions;
  Queue.iter
    (fun key ->
      match Hashtbl.find_opt t.dedup key with
      | None -> ()
      | Some record ->
        line
          [
            ("k", Journal.String "dedup");
            ("key", Journal.String key);
            ("resp", Journal.String (Journal.encode record));
          ])
    t.dedup_order;
  Buffer.contents buf

let snapshot_now t =
  match t.wal with
  | None -> Ok ()
  | Some wal -> (
    match Wal.snapshot wal (snapshot_payload t) with
    | Ok () ->
      t.appends_since_snapshot <- 0;
      Ok ()
    | Error e -> Error e)

let maybe_snapshot t =
  if
    t.cfg.snapshot_every > 0
    && t.appends_since_snapshot >= t.cfg.snapshot_every
  then
    match snapshot_now t with
    | Ok () -> ()
    | Error _ ->
      (* The op that triggered us is already durable in the segments;
         a failed snapshot only defers compaction. *)
      t.snapshot_failures <- t.snapshot_failures + 1;
      t.appends_since_snapshot <- 0

(* Rebuild sessions and the dedup cache from a snapshot payload.
   Returns the number of entries that could not be restored: a CRC
   guards the payload, but a malformed entry must degrade to one lost
   session — never an exception out of [create] that would crash-loop
   the server on every restart. *)
let restore_from_snapshot t payload =
  let failures = ref 0 in
  String.split_on_char '\n' payload
  |> List.iter (fun line ->
         (* Clause strings are JSON-escaped fields, so raw newlines
            only ever separate records. *)
         match Journal.parse_line line with
         | None -> if String.trim line <> "" then incr failures
         | Some fields -> (
           match Journal.find_string fields "k" with
           | Some "sess" -> (
             let sid =
               Option.value (Journal.find_string fields "sid") ~default:"?"
             in
             let vars =
               Option.value (Journal.find_int fields "vars") ~default:0
             in
             let n = Option.value (Journal.find_int fields "n") ~default:0 in
             match
               Error.protect ~context:"session-restore" (fun () ->
                   let s = fresh_session vars in
                   for i = 0 to n - 1 do
                     match
                       Journal.find_string fields (Printf.sprintf "c%d" i)
                     with
                     | Some clause -> add_clause_to_session s clause
                     | None -> ()
                   done;
                   s)
             with
             | Ok s -> Hashtbl.replace t.sessions sid s
             | Error _ ->
               incr failures;
               Hashtbl.remove t.sessions sid)
           | Some "dedup" -> (
             match
               ( Journal.find_string fields "key",
                 Journal.find_string fields "resp" )
             with
             | Some key, Some resp -> (
               match Journal.parse_line resp with
               | Some record -> cache_reply t key record
               | None -> incr failures)
             | _ -> incr failures)
           | _ -> incr failures));
  !failures

(* --- apply -------------------------------------------------------------- *)

let log_op t ?key ~sid op =
  match t.wal with
  | None -> Ok ()
  | Some _ when t.replaying -> Ok ()
  | Some wal -> (
    match Wal.append wal (Journal.encode (op_to_record ?key ~sid op)) with
    | Ok _ ->
      t.appends_since_snapshot <- t.appends_since_snapshot + 1;
      Ok ()
    | Error e -> Error e)

let apply t ?key ~sid op =
  (* Canonicalise embedded whitespace before anything is logged or
     cached, so WAL records, snapshots, and the live solver all see
     the same clause text (replay re-normalises identically). *)
  let op =
    match op with
    | Add clause -> Add (normalize_ws clause)
    | Solve assumptions -> Solve (normalize_ws assumptions)
    | (New _ | New_var | Close | Evict) as op -> op
  in
  match key with
  | Some k when Hashtbl.mem t.dedup k ->
    { reply = Ok (Hashtbl.find t.dedup k); replayed = true }
  | _ -> (
    (* Cheap validation before any WAL traffic. *)
    let table_full =
      match op with
      | New _ ->
        t.cfg.max_sessions > 0
        && (not (Hashtbl.mem t.sessions sid))
        && Hashtbl.length t.sessions >= t.cfg.max_sessions
      | _ -> false
    in
    if table_full then
      {
        reply =
          Error
            (Printf.sprintf "session: table full (%d sessions, cap %d)"
               (Hashtbl.length t.sessions) t.cfg.max_sessions);
        replayed = false;
      }
    else
      match op with
      | (Close | Evict) when not (Hashtbl.mem t.sessions sid) ->
        (* Tolerant close: nothing to tear down, nothing to log. *)
        { reply = Ok []; replayed = false }
      | (New_var | Add _ | Solve _) when not (Hashtbl.mem t.sessions sid) ->
        {
          reply = Error (Printf.sprintf "session: unknown sid %s" sid);
          replayed = false;
        }
      | _ -> (
        match log_op t ?key ~sid op with
        | Error e ->
          (* Not durable -> not acked -> state untouched. The client's
             retry (same key) starts the sequence over. *)
          { reply = Error ("wal: " ^ Error.to_string e); replayed = false }
        | Ok () ->
          let reply = execute t ~sid op in
          (match (key, reply) with
          | Some k, Ok record -> cache_reply t k record
          | _ -> ());
          if not t.replaying then maybe_snapshot t;
          { reply; replayed = false }))

(* --- construction / recovery ------------------------------------------- *)

let replay_records t records =
  t.replaying <- true;
  let n = ref 0 in
  List.iter
    (fun (_lsn, payload) ->
      match Journal.parse_line payload with
      | None -> ()
      | Some fields -> (
        match op_of_record fields with
        | None -> ()
        | Some op ->
          incr n;
          let sid =
            Option.value (Journal.find_string fields "sid") ~default:"s0"
          in
          let key = Journal.find_string fields "key" in
          ignore (apply t ?key ~sid op)))
    records;
  t.replaying <- false;
  !n

let create cfg =
  let make wal =
    {
      cfg;
      sessions = Hashtbl.create 64;
      dedup = Hashtbl.create 256;
      dedup_order = Queue.create ();
      wal;
      replaying = false;
      appends_since_snapshot = 0;
      snapshot_failures = 0;
      evictions = 0;
    }
  in
  match cfg.wal_dir with
  | None ->
    Ok
      ( make None,
        {
          sessions = 0;
          replayed = 0;
          from_snapshot = false;
          truncated_bytes = 0;
          corrupt_snapshots = 0;
          restore_errors = 0;
        } )
  | Some dir -> (
    match
      Wal.open_dir ~fsync:cfg.fsync ~segment_bytes:cfg.segment_bytes dir
    with
    | Error e -> Error e
    | Ok (wal, recovery) ->
      let t = make (Some wal) in
      let restore_errors =
        match recovery.Wal.snapshot with
        | Some (_, payload) -> restore_from_snapshot t payload
        | None -> 0
      in
      let replayed = replay_records t recovery.Wal.records in
      Ok
        ( t,
          {
            sessions = Hashtbl.length t.sessions;
            replayed;
            from_snapshot = recovery.Wal.snapshot <> None;
            truncated_bytes = recovery.Wal.truncated_bytes;
            corrupt_snapshots = recovery.Wal.corrupt_snapshots;
            restore_errors;
          } ))

(* --- queries + maintenance ---------------------------------------------- *)

let info t sid =
  match Hashtbl.find_opt t.sessions sid with
  | None -> None
  | Some s -> Some (Cdcl.Solver.num_vars s.solver, s.clause_count)

let session_count t = Hashtbl.length t.sessions

let evict_idle t =
  if t.cfg.session_ttl <= 0.0 then 0
  else begin
    let now = Unix.gettimeofday () in
    let idle =
      Hashtbl.fold
        (fun sid s acc ->
          if now -. s.last_used > t.cfg.session_ttl then sid :: acc else acc)
        t.sessions []
    in
    List.iter (fun sid -> ignore (apply t ~sid Evict)) idle;
    t.evictions <- t.evictions + List.length idle;
    List.length idle
  end

let evictions t = t.evictions
let snapshot_failures t = t.snapshot_failures

let flush t =
  match t.wal with None -> Ok () | Some wal -> Wal.maybe_sync wal

let close t = match t.wal with None -> () | Some wal -> Wal.close wal
